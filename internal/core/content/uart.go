package content

import (
	"repro/internal/core/basefuncs"
	"repro/internal/core/defines"
	"repro/internal/core/env"
)

// uartEnv builds the UART module test environment. Its abstraction layer
// re-maps every UART register name from the global layer; the ported
// variant carries the SC88-SEC override for the renamed data register
// (UART_DR_OFF -> UART_DATA_OFF). The relocated UART block of SC88-C/SEC
// needs no environment change at all: the base address flows in through
// the global register definitions under its stable name.
func uartEnv(ported bool) *env.Env {
	e := env.MustNew(ModuleUART)
	set := e.Defines
	commonDefines(set)

	set.MustAdd(defines.Entry{Name: "REG_UART_BASE", Default: "UART_BASE",
		Comment: "re-mapped global UART registers"})
	dr := defines.Entry{Name: "REG_UART_DR", Default: "UART_BASE+UART_DR_OFF"}
	if ported {
		// SC88-SEC renamed the data register in the global definitions.
		dr.PerDerivative = map[string]string{"DERIV_SEC": "UART_BASE+UART_DATA_OFF"}
	}
	set.MustAdd(dr)
	set.MustAdd(defines.Entry{Name: "REG_UART_SR", Default: "UART_BASE+UART_SR_OFF"})
	set.MustAdd(defines.Entry{Name: "REG_UART_CR", Default: "UART_BASE+UART_CR_OFF"})
	set.MustAdd(defines.Entry{Name: "REG_UART_BRR", Default: "UART_BASE+UART_BRR_OFF"})

	set.MustAdd(defines.Entry{Name: "UART_TEST_DIVIDER", Default: "1",
		Comment: "test baud divider; one byte takes divider*10 cycles"})
	set.MustAdd(defines.Entry{Name: "UART_SLOW_DIVIDER", Default: "64",
		Comment: "slow divider for busy-state observation tests"})
	set.MustAdd(defines.Entry{Name: "CR_ENABLE", Default: "1"})
	set.MustAdd(defines.Entry{Name: "CR_LOOPBACK", Default: "8"})
	set.MustAdd(defines.Entry{Name: "SR_TXREADY", Default: "1"})
	set.MustAdd(defines.Entry{Name: "SR_RXAVAIL", Default: "2"})
	set.MustAdd(defines.Entry{Name: "SR_TXIDLE", Default: "4"})

	lib := e.Funcs
	commonFuncs(lib, ported)
	lib.MustAdd(basefuncs.Function{
		Name:        "Base_Uart_Init",
		Doc:         "Initialise the UART at the test divider.",
		WrapsGlobal: "ES_Uart_Init",
		SavesRA:     true,
		Body: `    LOAD d0, UART_TEST_DIVIDER
    LOAD CallAddr, ES_Uart_Init
    CALL CallAddr`,
	})
	lib.MustAdd(basefuncs.Function{
		Name:        "Base_Uart_Send",
		Doc:         "Queue one byte for transmission.",
		Params:      "d0 = byte",
		WrapsGlobal: "ES_Uart_Send",
		SavesRA:     true,
		Body: `    LOAD CallAddr, ES_Uart_Send
    CALL CallAddr`,
	})
	lib.MustAdd(basefuncs.Function{
		Name: "Base_Uart_Set_Loopback",
		Doc:  "Route transmitted bytes back into the receiver.",
		Body: `    LOAD d14, CR_ENABLE | CR_LOOPBACK
    STORE [REG_UART_CR], d14`,
	})
	lib.MustAdd(basefuncs.Function{
		Name:    "Base_Uart_Recv",
		Doc:     "Wait for a received byte; fails the test on timeout.",
		Params:  "returns d0 = byte",
		SavesRA: true,
		Body: `    LOAD d14, TIMEOUT_LOOPS
    LOAD d12, 0
URX_loop:
    LOAD d13, [REG_UART_SR]
    AND d13, d13, SR_RXAVAIL
    BNE d13, d12, URX_got
    SUB d14, d14, 1
    BNE d14, d12, URX_loop
    CALL Base_Report_Fail
URX_got:
    LOAD d0, [REG_UART_DR]`,
	})
	lib.MustAdd(basefuncs.Function{
		Name:    "Base_Uart_Wait_Idle",
		Doc:     "Wait until the transmitter is idle; fails the test on timeout.",
		SavesRA: true,
		Body: `    LOAD d14, TIMEOUT_LOOPS
    LOAD d12, 0
UWI_loop:
    LOAD d13, [REG_UART_SR]
    AND d13, d13, SR_TXIDLE
    BNE d13, d12, UWI_done
    SUB d14, d14, 1
    BNE d14, d12, UWI_loop
    CALL Base_Report_Fail
UWI_done:
    NOP`,
	})

	e.MustAddTest(env.TestCell{
		ID:          "TEST_UART_LOOPBACK_SINGLE",
		Description: "one byte through the loopback path returns unchanged",
		Source: `;; TEST_UART_LOOPBACK_SINGLE
; REQ: REQ-UART-001
.INCLUDE "Globals.inc"
TEST_BYTE .EQU 0x5A
test_main:
    CALL Base_Uart_Init
    CALL Base_Uart_Set_Loopback
    LOAD d0, TEST_BYTE
    CALL Base_Uart_Send
    CALL Base_Uart_Recv
    LOAD d2, TEST_BYTE
    BNE d0, d2, t_fail
    CALL Base_Report_Pass
t_fail:
    CALL Base_Report_Fail
`,
	})
	e.MustAddTest(env.TestCell{
		ID:          "TEST_UART_LOOPBACK_BURST",
		Description: "four bytes in sequence survive the loopback FIFO path in order",
		Source: `;; TEST_UART_LOOPBACK_BURST
; REQ: REQ-UART-001
.INCLUDE "Globals.inc"
BURST_BASE_BYTE .EQU 0x10
BURST_LEN .EQU 4
test_main:
    CALL Base_Uart_Init
    CALL Base_Uart_Set_Loopback
    LOAD d5, BURST_BASE_BYTE
    LOAD d6, 0
burst_send:
    MOV d0, d5
    ADD d0, d0, d6
    CALL Base_Uart_Send
    ADD d6, d6, 1
    LOAD d7, BURST_LEN
    BLT d6, d7, burst_send
    LOAD d6, 0
burst_recv:
    CALL Base_Uart_Recv
    CALL Base_Checkpoint
    MOV d8, d5
    ADD d8, d8, d6
    BNE d0, d8, t_fail
    ADD d6, d6, 1
    LOAD d7, BURST_LEN
    BLT d6, d7, burst_recv
    CALL Base_Report_Pass
t_fail:
    CALL Base_Report_Fail
`,
	})
	e.MustAddTest(env.TestCell{
		ID:          "TEST_UART_TX_IDLE",
		Description: "transmitter reports busy while shifting and idle afterwards",
		Source: `;; TEST_UART_TX_IDLE
; REQ: REQ-UART-002
.INCLUDE "Globals.inc"
IDLE_TEST_BYTE .EQU 0x77
test_main:
    CALL Base_Uart_Init
    ; slow the wire down so the busy state is observable
    LOAD d0, UART_SLOW_DIVIDER
    STORE [REG_UART_BRR], d0
    CALL Base_Uart_Wait_Idle
    LOAD d0, IDLE_TEST_BYTE
    CALL Base_Uart_Send
    ; immediately after queuing, the shifter must be busy
    LOAD d2, [REG_UART_SR]
    AND d3, d2, SR_TXIDLE
    LOAD d4, 0
    BNE d3, d4, t_fail
    CALL Base_Uart_Wait_Idle
    CALL Base_Report_Pass
t_fail:
    CALL Base_Report_Fail
`,
	})
	e.MustAddTest(env.TestCell{
		ID:          "TEST_UART_STATUS_RESET",
		Description: "after init: TX ready, nothing received",
		Source: `;; TEST_UART_STATUS_RESET
; REQ: REQ-UART-003
.INCLUDE "Globals.inc"
test_main:
    CALL Base_Uart_Init
    LOAD d2, [REG_UART_SR]
    AND d3, d2, SR_TXREADY
    LOAD d4, SR_TXREADY
    BNE d3, d4, t_fail
    AND d3, d2, SR_RXAVAIL
    LOAD d4, 0
    BNE d3, d4, t_fail
    CALL Base_Report_Pass
t_fail:
    CALL Base_Report_Fail
`,
	})
	return e
}
