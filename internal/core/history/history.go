// Package history is the cross-run memory of the regression matrix: an
// on-disk per-cell store of build/run times and verdict counts, keyed
// by the resilience CellKey (module/test@deriv/platform). It closes the
// scheduling half of the regression-as-a-service roadmap item: a matrix
// that knows how long each cell took last time can dispatch the longest
// expected jobs first (the classic LPT heuristic), shrinking the
// makespan at a fixed worker count, and a progress board that knows the
// expected remaining work can print a real ETA instead of a guess.
//
// Times are smoothed with a half-life-one EWMA (new = (old+sample)/2):
// recent runs dominate, a one-off hiccup decays in a few runs, and the
// arithmetic is integer-exact so the store file is deterministic for a
// deterministic run sequence. Cells with no history fall back to the
// per-platform-kind mean, then to declaration order — a cold store
// degrades to exactly the old behaviour.
//
// The store is a single JSON file (advm-history.json) under the store
// directory, written atomically (temp file + rename) with sorted keys,
// so concurrent readers never observe a torn file and the file diffs
// cleanly under version control. All methods are nil-safe: a nil
// *Store records nothing and estimates nothing, so the matrix threads
// an optional store without guards.
package history

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// FileName is the store file inside the store directory.
const FileName = "advm-history.json"

// CellStats is the accumulated history of one matrix cell.
type CellStats struct {
	// Kind is the platform kind, denormalised from the key so per-kind
	// aggregates need no key parsing.
	Kind string `json:"kind"`
	// Runs counts recorded runs; Passed/Failed/Flaky partition them.
	Runs   int `json:"runs"`
	Passed int `json:"passed"`
	Failed int `json:"failed"`
	Flaky  int `json:"flaky"`
	// BuildNs and RunNs are EWMA-smoothed nanoseconds.
	BuildNs int64 `json:"build_ewma_ns"`
	RunNs   int64 `json:"run_ewma_ns"`
	// LastStatus and LastWall describe the most recent recorded run
	// (LastWall is absolute RFC3339; informational only).
	LastStatus string `json:"last_status"`
	LastWall   string `json:"last_wall,omitempty"`
}

// ExpectedNs is the cell's expected build+run time.
func (c CellStats) ExpectedNs() int64 { return c.BuildNs + c.RunNs }

// FlakyRate is the fraction of recorded runs that were flaky.
func (c CellStats) FlakyRate() float64 {
	if c.Runs == 0 {
		return 0
	}
	return float64(c.Flaky) / float64(c.Runs)
}

// Store is the on-disk history. Create with Open; share one store
// across regressions like the build and run caches. Safe for
// concurrent use.
type Store struct {
	mu    sync.Mutex
	dir   string
	cells map[string]*CellStats
	dirty bool
}

// Open loads the store under dir, creating an empty store when the
// file does not exist yet. The directory itself is created by Save.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, cells: map[string]*CellStats{}}
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if os.IsNotExist(err) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if err := json.Unmarshal(data, &s.cells); err != nil {
		return nil, fmt.Errorf("history: %s is corrupt: %w", FileName, err)
	}
	return s, nil
}

// NewMemory creates a store with no backing directory — history for a
// single process lifetime (tests, benchmarks). Save on it is a no-op.
func NewMemory() *Store {
	return &Store{cells: map[string]*CellStats{}}
}

// Record folds one completed run of a cell into the store. status is
// one of the journal outcome statuses (passed/failed/flaky); runs
// served from the run cache should not be recorded — their run time is
// a cache lookup, not a simulation, and would poison the estimates.
func (s *Store) Record(key, kind string, buildNs, runNs int64, status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[key]
	if !ok {
		c = &CellStats{Kind: kind, BuildNs: buildNs, RunNs: runNs}
		s.cells[key] = c
	} else {
		c.Kind = kind
		c.BuildNs = (c.BuildNs + buildNs) / 2
		c.RunNs = (c.RunNs + runNs) / 2
	}
	c.Runs++
	switch status {
	case "passed":
		c.Passed++
	case "flaky":
		c.Flaky++
		c.Failed++
	default:
		c.Failed++
	}
	c.LastStatus = status
	c.LastWall = time.Now().UTC().Format(time.RFC3339)
	s.dirty = true
}

// Estimate returns the cell's expected build+run nanoseconds, or
// (0, false) for a cell the store has never seen.
func (s *Store) Estimate(key string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[key]
	if !ok || c.Runs == 0 {
		return 0, false
	}
	return c.ExpectedNs(), true
}

// EstimateKind returns the mean expected time over every recorded cell
// of one platform kind — the warm-start prior for cells the store has
// not seen individually.
func (s *Store) EstimateKind(kind string) (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum int64
	n := 0
	for _, c := range s.cells {
		if c.Kind == kind && c.Runs > 0 {
			sum += c.ExpectedNs()
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / int64(n), true
}

// Get returns a copy of one cell's stats.
func (s *Store) Get(key string) (CellStats, bool) {
	if s == nil {
		return CellStats{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.cells[key]
	if !ok {
		return CellStats{}, false
	}
	return *c, true
}

// Len reports the number of tracked cells.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cells)
}

// Save writes the store atomically (temp file + rename) with sorted
// keys. A store opened without a directory (NewMemory) or with no new
// records is a no-op.
func (s *Store) Save() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" || !s.dirty {
		return nil
	}
	data, err := json.MarshalIndent(s.cells, "", "  ")
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, FileName+".tmp*")
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("history: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, FileName)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("history: %w", err)
	}
	s.dirty = false
	return nil
}

// Order computes the longest-expected-job-first dispatch permutation
// for a matrix: cells sorted by descending expected time, where a
// cell's estimate is its own history, then the per-kind mean, then
// zero. The sort is stable, so cells without any estimate keep their
// declaration order (the cold fallback) and sink to the end — the
// cheap unknowns fill worker idle tails instead of blocking the long
// jobs. Returns nil when the store is nil or has nothing to say,
// meaning "keep declaration order".
func (s *Store) Order(keys, kinds []string) []int {
	if s == nil || s.Len() == 0 {
		return nil
	}
	est := make([]int64, len(keys))
	any := false
	kindMean := map[string]int64{}
	for i, key := range keys {
		if ns, ok := s.Estimate(key); ok {
			est[i] = ns
			any = true
			continue
		}
		kind := kinds[i]
		mean, seen := kindMean[kind]
		if !seen {
			mean, _ = s.EstimateKind(kind)
			kindMean[kind] = mean
		}
		if mean > 0 {
			est[i] = mean
			any = true
		}
	}
	if !any {
		return nil
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return est[order[a]] > est[order[b]] })
	return order
}

// Makespan simulates a greedy list scheduler: cells dispatched in
// order onto the least-loaded of `workers` identical workers, each
// cell costing durations[i] nanoseconds. It returns the simulated
// completion time — the analytical tool the E17 experiment uses to
// compare dispatch orders without wall-clock noise.
func Makespan(durations []int64, order []int, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	load := make([]int64, workers)
	if order == nil {
		order = make([]int, len(durations))
		for i := range order {
			order[i] = i
		}
	}
	for _, i := range order {
		// Dispatch to the least-loaded worker (a channel-fed pool drains
		// in exactly this pattern when cells dominate dispatch overhead).
		min := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[min] {
				min = w
			}
		}
		load[min] += durations[i]
	}
	var max int64
	for _, l := range load {
		if l > max {
			max = l
		}
	}
	return max
}
