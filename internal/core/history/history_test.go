package history

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	s.Record("m/t@d/golden", "golden", 1000, 5000, "passed")
	s.Record("m/t@d/rtl", "rtl", 2000, 9000, "flaky")
	if err := s.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName)); err != nil {
		t.Fatalf("store file missing: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if s2.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s2.Len())
	}
	c, ok := s2.Get("m/t@d/golden")
	if !ok {
		t.Fatalf("golden cell missing after reload")
	}
	if c.Runs != 1 || c.Passed != 1 || c.BuildNs != 1000 || c.RunNs != 5000 {
		t.Fatalf("golden cell = %+v", c)
	}
	if ns, ok := s2.Estimate("m/t@d/golden"); !ok || ns != 6000 {
		t.Fatalf("Estimate = %d, %v; want 6000, true", ns, ok)
	}
	f, _ := s2.Get("m/t@d/rtl")
	if f.Flaky != 1 || f.Failed != 1 || f.LastStatus != "flaky" {
		t.Fatalf("rtl cell = %+v", f)
	}
}

func TestEWMASmoothing(t *testing.T) {
	s := NewMemory()
	s.Record("k", "golden", 0, 1000, "passed")
	s.Record("k", "golden", 0, 3000, "passed")
	// EWMA with alpha 1/2: (1000+3000)/2 = 2000.
	if ns, _ := s.Estimate("k"); ns != 2000 {
		t.Fatalf("after two samples Estimate = %d, want 2000", ns)
	}
	s.Record("k", "golden", 0, 2000, "passed")
	if ns, _ := s.Estimate("k"); ns != 2000 {
		t.Fatalf("after three samples Estimate = %d, want 2000", ns)
	}
	c, _ := s.Get("k")
	if c.Runs != 3 || c.Passed != 3 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestEstimateKindFallback(t *testing.T) {
	s := NewMemory()
	s.Record("a", "rtl", 0, 1000, "passed")
	s.Record("b", "rtl", 0, 3000, "passed")
	if ns, ok := s.EstimateKind("rtl"); !ok || ns != 2000 {
		t.Fatalf("EstimateKind(rtl) = %d, %v; want 2000, true", ns, ok)
	}
	if _, ok := s.EstimateKind("gate"); ok {
		t.Fatalf("EstimateKind(gate) should report no data")
	}
}

func TestNilStoreIsSafe(t *testing.T) {
	var s *Store
	s.Record("k", "golden", 1, 2, "passed")
	if _, ok := s.Estimate("k"); ok {
		t.Fatal("nil store should not estimate")
	}
	if _, ok := s.EstimateKind("golden"); ok {
		t.Fatal("nil store should not estimate kinds")
	}
	if s.Len() != 0 {
		t.Fatal("nil store Len != 0")
	}
	if err := s.Save(); err != nil {
		t.Fatalf("nil Save: %v", err)
	}
	if s.Order([]string{"k"}, []string{"golden"}) != nil {
		t.Fatal("nil store Order should be nil")
	}
}

func TestOrderLongestFirst(t *testing.T) {
	s := NewMemory()
	s.Record("short", "golden", 0, 100, "passed")
	s.Record("long", "golden", 0, 10_000, "passed")
	s.Record("mid", "golden", 0, 1_000, "passed")

	keys := []string{"short", "mid", "unknown-a", "long", "unknown-b"}
	kinds := []string{"golden", "golden", "gate", "golden", "gate"}
	order := s.Order(keys, kinds)
	if order == nil {
		t.Fatal("warm store returned nil order")
	}
	// Known cells longest first; gate cells (no per-kind data) estimate
	// zero and keep declaration order at the tail.
	want := []int{3, 1, 0, 2, 4}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}

	// A cold store keeps declaration order by returning nil.
	if got := NewMemory().Order(keys, kinds); got != nil {
		t.Fatalf("cold store order = %v, want nil", got)
	}
}

func TestOrderKindFallbackForUnseenCells(t *testing.T) {
	s := NewMemory()
	s.Record("seen-rtl", "rtl", 0, 50_000, "passed")
	s.Record("seen-golden", "golden", 0, 100, "passed")
	keys := []string{"seen-golden", "new-rtl", "seen-rtl"}
	kinds := []string{"golden", "rtl", "rtl"}
	order := s.Order(keys, kinds)
	// new-rtl inherits the rtl mean (50000) and ties with seen-rtl,
	// both ahead of the fast golden cell; the stable sort keeps the tie
	// in declaration order (index 1 before index 2).
	want := []int{1, 2, 0}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestMakespanLPTBeatsDeclarationOrder(t *testing.T) {
	// A classic adversarial mix: one long job declared last. In
	// declaration order the long job starts after the short ones and
	// dominates the tail; LPT starts it first and packs the short jobs
	// around it.
	durations := []int64{100, 100, 100, 100, 100, 100, 1000}
	workers := 2

	decl := Makespan(durations, nil, workers)

	s := NewMemory()
	keys := []string{"a", "b", "c", "d", "e", "f", "g"}
	kinds := make([]string, len(keys))
	for i, k := range keys {
		kinds[i] = "golden"
		s.Record(k, "golden", 0, durations[i], "passed")
	}
	lpt := Makespan(durations, s.Order(keys, kinds), workers)

	if lpt >= decl {
		t.Fatalf("LPT makespan %d not better than declaration order %d", lpt, decl)
	}
	// Optimal here is 1000 (long job alone on one worker, six shorts on
	// the other); LPT achieves it.
	if lpt != 1000 {
		t.Fatalf("LPT makespan = %d, want 1000", lpt)
	}
	if decl != 1300 {
		t.Fatalf("declaration-order makespan = %d, want 1300", decl)
	}
}

func TestSaveIsIdempotentWhenClean(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.Save(); err != nil {
		t.Fatalf("clean Save: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, FileName)); !os.IsNotExist(err) {
		t.Fatal("clean Save should not create a file")
	}
	s.Record("k", "golden", 1, 2, "passed")
	if err := s.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	before, _ := os.ReadFile(filepath.Join(dir, FileName))
	if err := s.Save(); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, FileName))
	if string(before) != string(after) {
		t.Fatal("no-op Save changed the file")
	}
}
