package env

import (
	"strings"
	"testing"

	"repro/internal/core/basefuncs"
	"repro/internal/core/defines"
)

func TestDerivativeSpecificNamesRejected(t *testing.T) {
	for _, bad := range []string{"NVM_SC88-B", "DERIV_C_UART", "sc88-sec"} {
		if _, err := New(bad); err == nil {
			t.Errorf("module name %q should be rejected", bad)
		}
	}
	if _, err := New(""); err == nil {
		t.Error("empty module name should be rejected")
	}
	if _, err := New("NVM"); err != nil {
		t.Errorf("NVM rejected: %v", err)
	}
}

func TestAddAndMaterialise(t *testing.T) {
	e := MustNew("UART")
	e.Defines.MustAdd(defines.Entry{Name: "X", Default: "1"})
	e.Funcs.MustAdd(basefuncs.Function{Name: "Base_F", Body: "    NOP"})
	e.MustAddTest(TestCell{ID: "TEST_A", Description: "first", Source: "test_main:\n HALT\n"})
	e.MustAddTest(TestCell{ID: "TEST_B", Description: "second", Source: "test_main:\n HALT\n"})
	if err := e.AddTest(TestCell{ID: "TEST_A"}); err == nil {
		t.Error("duplicate test should fail")
	}
	if err := e.AddTest(TestCell{}); err == nil {
		t.Error("empty test ID should fail")
	}
	tree := e.Materialise()
	for _, want := range []string{
		"UART/Abstraction_Layer/Globals.inc",
		"UART/Abstraction_Layer/Base_Functions.asm",
		"UART/TESTPLAN.TXT",
		"UART/TEST_A/test.asm",
		"UART/TEST_B/test.asm",
	} {
		if _, ok := tree[want]; !ok {
			t.Errorf("tree missing %q (have %v)", want, SortedPaths(tree))
		}
	}
	plan := e.TestPlan()
	if !strings.Contains(plan, "TEST_A") || !strings.Contains(plan, "first") {
		t.Errorf("test plan content:\n%s", plan)
	}
	if got := e.TestIDs(); len(got) != 2 || got[0] != "TEST_A" {
		t.Errorf("test IDs = %v", got)
	}
	if _, ok := e.Test("TEST_B"); !ok {
		t.Error("Test lookup failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	e := MustNew("NVM")
	e.Defines.MustAdd(defines.Entry{Name: "X", Default: "1"})
	e.MustAddTest(TestCell{ID: "T1", Source: "a"})
	c := e.Clone()
	if err := c.Defines.SetDefault("X", "2"); err != nil {
		t.Fatal(err)
	}
	c.MustAddTest(TestCell{ID: "T2", Source: "b"})
	if orig, _ := e.Defines.Get("X"); orig.Default != "1" {
		t.Error("clone mutated original defines")
	}
	if len(e.Tests()) != 1 {
		t.Error("clone mutated original tests")
	}
}
