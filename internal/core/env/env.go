// Package env models one ADVM module-level test environment (the paper's
// Figures 1 and 3): a test layer of self-checking test cells, an
// abstraction layer holding the Global Defines and Base Functions, and a
// plain-text test plan. An Env materialises to the Figure 3 directory
// structure:
//
//	MODULE_NAME/
//	  Abstraction_Layer/Globals.inc
//	  Abstraction_Layer/Base_Functions.asm
//	  TESTPLAN.TXT
//	  TEST_ID_NAME/test.asm
//	  ...
package env

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/basefuncs"
	"repro/internal/core/defines"
)

// TestCell is one directed test (one test cell directory in Figure 3).
type TestCell struct {
	// ID is the TEST_ID_NAME directory name, e.g. "TEST_NVM_PAGE_SELECT".
	ID string
	// Description is the test-plan entry.
	Description string
	// Source is the test.asm content. By ADVM convention it includes
	// Globals.inc, defines test_main, uses only abstraction-layer names,
	// and self-reports through Base_Report_Pass/Fail.
	Source string
}

// Env is a module-level test environment.
type Env struct {
	// Module names the environment after the module under test (or the
	// test class); derivative-specific names are not permitted.
	Module string
	// Defines is the Global Defines component of the abstraction layer.
	Defines *defines.Set
	// Funcs is the Base Functions component of the abstraction layer.
	Funcs *basefuncs.Library
	tests []*TestCell
	index map[string]*TestCell
}

// New creates an environment. Derivative-specific module names are
// rejected (the paper: "Derivative specific names are not permitted").
func New(module string) (*Env, error) {
	if module == "" {
		return nil, fmt.Errorf("env: empty module name")
	}
	up := strings.ToUpper(module)
	for _, frag := range []string{"SC88-A", "SC88-B", "SC88-C", "SC88-SEC", "DERIV_"} {
		if strings.Contains(up, frag) {
			return nil, fmt.Errorf("env: module name %q is derivative specific", module)
		}
	}
	return &Env{
		Module:  module,
		Defines: defines.NewSet(),
		Funcs:   basefuncs.NewLibrary(),
		index:   make(map[string]*TestCell),
	}, nil
}

// MustNew is New that panics on error, for static construction.
func MustNew(module string) *Env {
	e, err := New(module)
	if err != nil {
		panic(err)
	}
	return e
}

// Clone deep-copies the environment (releases, porting what-ifs).
func (e *Env) Clone() *Env {
	out := &Env{
		Module:  e.Module,
		Defines: e.Defines.Clone(),
		Funcs:   e.Funcs.Clone(),
		index:   make(map[string]*TestCell),
	}
	for _, t := range e.tests {
		c := *t
		out.tests = append(out.tests, &c)
		out.index[c.ID] = &c
	}
	return out
}

// AddTest appends a test cell.
func (e *Env) AddTest(t TestCell) error {
	if t.ID == "" {
		return fmt.Errorf("env: test with empty ID")
	}
	if _, dup := e.index[t.ID]; dup {
		return fmt.Errorf("env: test %q already present", t.ID)
	}
	c := t
	e.tests = append(e.tests, &c)
	e.index[c.ID] = &c
	return nil
}

// MustAddTest is AddTest that panics on error.
func (e *Env) MustAddTest(t TestCell) {
	if err := e.AddTest(t); err != nil {
		panic(err)
	}
}

// Test returns a test cell by ID.
func (e *Env) Test(id string) (*TestCell, bool) {
	t, ok := e.index[id]
	return t, ok
}

// Tests returns the test cells in definition order.
func (e *Env) Tests() []*TestCell {
	return append([]*TestCell(nil), e.tests...)
}

// TestIDs returns the test IDs in definition order.
func (e *Env) TestIDs() []string {
	out := make([]string, len(e.tests))
	for i, t := range e.tests {
		out[i] = t.ID
	}
	return out
}

// TestPlan renders TESTPLAN.TXT: plain text so that it "can be searched
// (grep'ed) easily from the command line".
func (e *Env) TestPlan() string {
	var b strings.Builder
	fmt.Fprintf(&b, "TESTPLAN for module %s\n", e.Module)
	b.WriteString(strings.Repeat("=", 40) + "\n")
	for _, t := range e.tests {
		fmt.Fprintf(&b, "%-32s : %s\n", t.ID, t.Description)
	}
	return b.String()
}

// Paths of the materialised tree, relative to the environment root.
const (
	GlobalsFile   = "Abstraction_Layer/Globals.inc"
	BaseFuncsFile = "Abstraction_Layer/Base_Functions.asm"
	TestPlanFile  = "TESTPLAN.TXT"
)

// TestSourcePath returns the materialised path of a test cell's source.
func (e *Env) TestSourcePath(id string) string {
	return e.Module + "/" + id + "/test.asm"
}

// Materialise renders the environment to a file tree (path -> content),
// rooted at the module directory per Figure 3.
func (e *Env) Materialise() map[string]string {
	tree := map[string]string{
		e.Module + "/" + GlobalsFile:   e.Defines.Render(e.Module),
		e.Module + "/" + BaseFuncsFile: e.Funcs.Render(e.Module),
		e.Module + "/" + TestPlanFile:  e.TestPlan(),
	}
	for _, t := range e.tests {
		tree[e.TestSourcePath(t.ID)] = t.Source
	}
	return tree
}

// SortedPaths returns a tree's paths in deterministic order.
func SortedPaths(tree map[string]string) []string {
	out := make([]string, 0, len(tree))
	for p := range tree {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
