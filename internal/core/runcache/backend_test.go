package runcache

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core/castore"
	"repro/internal/platform"
)

func testStore(t *testing.T) *castore.Store {
	t.Helper()
	s, err := castore.Open(t.TempDir(), castore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleResult() *platform.Result {
	return &platform.Result{
		Platform:     "golden/SC88-A",
		Kind:         platform.KindGolden,
		Reason:       platform.StopHalt,
		MboxResult:   0x600D,
		MboxDone:     true,
		Instructions: 4242,
		Cycles:       9001,
		Console:      "PASS\n",
		Checkpoints:  []uint32{1, 2, 3},
		State:        &platform.ArchState{D: [16]uint32{7, 8}, PC: 0x1000, PSW: 0x4},
	}
}

const backendKey = "cafe0000deadbeef0000000000000000"

func TestBackendOutcomeSurvivesRestart(t *testing.T) {
	store := testStore(t)
	c1 := New()
	c1.SetBackend(store)
	want := sampleResult()
	res, cached, err := c1.Do(backendKey, func() (*platform.Result, error) { return want, nil })
	if err != nil || cached {
		t.Fatalf("cold Do: cached=%v err=%v", cached, err)
	}
	if !reflect.DeepEqual(res, want) {
		t.Fatalf("cold Do result mismatch: %+v", res)
	}

	// A fresh cache over the same store is the restarted process: the
	// outcome must come back without simulating.
	c2 := New()
	c2.SetBackend(store)
	res2, cached2, err := c2.Do(backendKey, func() (*platform.Result, error) {
		t.Fatal("restart re-simulated a stored outcome")
		return nil, nil
	})
	if err != nil || !cached2 {
		t.Fatalf("restarted Do: cached=%v err=%v", cached2, err)
	}
	if !reflect.DeepEqual(res2, want) {
		t.Fatalf("restarted result mismatch:\n got %+v\nwant %+v", res2, want)
	}
	if st := c2.Stats(); st.DiskHits != 1 || st.Misses != 0 {
		t.Fatalf("restarted stats = %+v", st)
	}
}

// TestPersistentHitNoAliasing is the deep-clone audit: a caller that
// corrupts the result it received — triage reattachment mutates state
// and checkpoint slices in place — must not poison what later readers
// of the same key see, whether they hit the in-memory tier or decode
// the store afresh.
func TestPersistentHitNoAliasing(t *testing.T) {
	store := testStore(t)
	c1 := New()
	c1.SetBackend(store)
	if _, _, err := c1.Do(backendKey, func() (*platform.Result, error) { return sampleResult(), nil }); err != nil {
		t.Fatal(err)
	}
	want := sampleResult()

	corrupt := func(r *platform.Result) {
		r.Checkpoints[0] = 0xDEAD
		r.Checkpoints = append(r.Checkpoints, 0xBEEF)
		r.State.D[0] = 0xFFFF
		r.State.PC = 0
		r.Console = "corrupted"
		r.Detail = "scribbled by triage"
	}

	// Corrupt a disk-tier hit, then re-read from the memory tier.
	c2 := New()
	c2.SetBackend(store)
	got, cached, err := c2.Do(backendKey, func() (*platform.Result, error) { return nil, fmt.Errorf("must not run") })
	if err != nil || !cached {
		t.Fatalf("disk hit: cached=%v err=%v", cached, err)
	}
	corrupt(got)
	again, _, err := c2.Do(backendKey, func() (*platform.Result, error) { return nil, fmt.Errorf("must not run") })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, want) {
		t.Fatalf("memory-tier re-read sees the corruption:\n got %+v %+v\nwant %+v %+v",
			again, again.State, want, want.State)
	}
	// And corrupt the re-read too, then decode the store from scratch.
	corrupt(again)
	c3 := New()
	c3.SetBackend(store)
	fresh, _, err := c3.Do(backendKey, func() (*platform.Result, error) { return nil, fmt.Errorf("must not run") })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, want) {
		t.Fatalf("store re-decode sees the corruption:\n got %+v %+v\nwant %+v %+v",
			fresh, fresh.State, want, want.State)
	}
}

func TestBackendErrorsNotPersisted(t *testing.T) {
	store := testStore(t)
	c1 := New()
	c1.SetBackend(store)
	if _, _, err := c1.Do(backendKey, func() (*platform.Result, error) { return nil, fmt.Errorf("flaky lab") }); err == nil {
		t.Fatal("run error swallowed")
	}
	// A fresh cache over the store must re-run: failures are memoised
	// in memory only.
	c2 := New()
	c2.SetBackend(store)
	ran := false
	res, cached, err := c2.Do(backendKey, func() (*platform.Result, error) { ran = true; return sampleResult(), nil })
	if err != nil || cached || !ran || res == nil {
		t.Fatalf("Do after error: ran=%v cached=%v err=%v", ran, cached, err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, ok := decodeResult([]byte("not a gob stream")); ok {
		t.Fatal("garbage decoded")
	}
	if _, ok := decodeResult(nil); ok {
		t.Fatal("empty payload decoded")
	}
}
