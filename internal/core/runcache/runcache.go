// Package runcache is a concurrency-safe, content-addressed memoisation
// layer for regression runs, the run-side twin of
// internal/core/buildcache. A regression matrix re-executes the same
// linked image on the same simulated hardware many times across
// regressions (and, with overlapping module selections, within one), yet
// the deterministic platforms — golden, RTL, gate — are pure functions
// of (image, platform kind, hardware config, run bounds): no wall-clock,
// no randomness, no external input. The cache keys each outcome by a
// SHA-256 content address over exactly those inputs and deduplicates
// concurrent runs of the same key with singleflight semantics.
//
// Soundness rests on the same release-label invariant as the build
// cache (the paper's Section 3): regressions only run against frozen
// labels, so an image content hash fully determines the program, and a
// platform kind plus hardware config fully determines the machine.
// Anything that breaks run purity bypasses the cache: fault-injection
// harnesses (Spec.NewPlatform), trace callbacks, event streams, and the
// non-deterministic platform rungs (emulator, bondout, silicon, whose
// models carry approximate timing and asynchronous peripherals).
package runcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"repro/internal/core/buildcache"
	"repro/internal/core/telemetry"
	"repro/internal/obj"
	"repro/internal/platform"
	"repro/internal/soc"
)

// Backend is the persistent second tier, shared with the build cache —
// one on-disk store (internal/core/castore) serves both, keyed by
// their disjoint content-address namespaces.
type Backend = buildcache.Backend

// Cacheable reports whether a platform kind's runs are deterministic
// functions of (image, config, bounds) and may be memoised. The golden
// model, RTL and gate-level simulations qualify; the emulator, bondout
// and product-silicon models do not (approximate timing, asynchronous
// peripheral behaviour).
func Cacheable(k platform.Kind) bool {
	switch k {
	case platform.KindGolden, platform.KindRTL, platform.KindGate:
		return true
	}
	return false
}

// imageHashes memoises ImageHash by image pointer: regressions share one
// *obj.Image across the cells of a (module, test, derivative) row, and
// images are immutable once linked.
var imageHashes sync.Map // *obj.Image -> string

// ImageHash content-addresses a linked image: entry point, segment
// addresses and bytes, and BSS geometry — every input that affects
// execution. Symbol and line tables are excluded; they only feed
// tracing, which bypasses the cache.
func ImageHash(img *obj.Image) string {
	if h, ok := imageHashes.Load(img); ok {
		return h.(string)
	}
	h := sha256.New()
	var n [8]byte
	w32 := func(v uint32) {
		binary.LittleEndian.PutUint32(n[:4], v)
		h.Write(n[:4])
	}
	w32(img.Entry)
	w32(img.BssAddr)
	w32(img.BssSize)
	for _, seg := range img.Segments {
		w32(seg.Addr)
		binary.LittleEndian.PutUint64(n[:], uint64(len(seg.Data)))
		h.Write(n[:])
		h.Write(seg.Data)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	imageHashes.Store(img, sum)
	return sum
}

// CellKey content-addresses one run: image, platform kind, hardware
// configuration, and the run bounds. HWConfig is a flat value struct, so
// its deterministic %+v rendering is a faithful serialisation.
//
// Purity audit — which RunSpec fields are keyed: only the run bounds
// (MaxInstructions, MaxCycles) affect a run's observable outcome.
// RunSpec.Engine is deliberately NOT keyed: every execution engine
// (interpreter, predecode, translate) is bit-identical by contract —
// same final state, counters, and stop reason — so a cached outcome is
// valid for any engine and engines share cache entries. (Engine-divergence
// is tested, not assumed: the golden package's differential fuzz suite
// enforces the contract.) Trace/Events/Context/DebugStops never reach
// the key because traced or cancellable runs bypass the cache entirely
// (see Cache.Do). Anyone adding a RunSpec field that changes observable
// results must add it to both key functions.
func CellKey(img *obj.Image, k platform.Kind, hw soc.HWConfig, spec platform.RunSpec) string {
	return buildcache.Key(
		ImageHash(img),
		k.String(),
		fmt.Sprintf("%+v", hw),
		fmt.Sprintf("max-insts=%d max-cycles=%d", spec.MaxInstructions, spec.MaxCycles),
	)
}

// OutcomeKey content-addresses one regression cell without needing the
// built image: the release epoch (the content hash of the frozen module
// environments) pins every source the cell's build reads, and the build
// pipeline is deterministic, so (epoch, module, test, derivative, kind)
// determines the image exactly. Keying on the inputs instead of the
// output is what lets a warm hit skip the build entirely — the run
// cache then subsumes the build cache for memoised cells.
func OutcomeKey(epoch, module, test, deriv string, k platform.Kind, hw soc.HWConfig, spec platform.RunSpec) string {
	return buildcache.Key(
		epoch, module, test, deriv,
		k.String(),
		fmt.Sprintf("%+v", hw),
		fmt.Sprintf("max-insts=%d max-cycles=%d", spec.MaxInstructions, spec.MaxCycles),
	)
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls answered from a completed entry.
	Hits uint64
	// Misses counts Do calls that executed the run.
	Misses uint64
	// Merged counts Do calls that blocked on another caller's in-flight
	// run instead of duplicating it.
	Merged uint64
	// DiskHits counts Do calls answered from the persistent backend
	// instead of simulating.
	DiskHits uint64
	// Bypassed counts runs that skipped the cache: non-deterministic
	// platform kinds, fault-injection harnesses, traced runs.
	Bypassed uint64
	// Entries is the number of cached outcomes (including cached errors).
	Entries int
}

// String renders a one-line summary.
func (s Stats) String() string {
	line := fmt.Sprintf("%d hits, %d misses, %d merged (%.1f%% reuse), %d bypassed, %d entries",
		s.Hits, s.Misses, s.Merged, s.Reuse(), s.Bypassed, s.Entries)
	if s.DiskHits > 0 {
		line += fmt.Sprintf(", %d from store", s.DiskHits)
	}
	return line
}

// Reuse is the percentage of memoisable runs served without simulating
// (hits, singleflight merges, and persistent-store hits), 0 on an
// untouched cache. Bypassed runs are outside the denominator — they
// were never candidates.
func (s Stats) Reuse() float64 {
	total := s.Hits + s.Misses + s.Merged + s.DiskHits
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Merged+s.DiskHits) / float64(total) * 100
}

// entry is one cache slot. ready is closed once res/err are final.
type entry struct {
	ready chan struct{}
	res   *platform.Result
	err   error
}

// Cache memoises run outcomes under content-address keys with
// singleflight semantics. The zero value is not usable; call New.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*entry
	stats   Stats
	metrics *telemetry.Registry
	backend Backend
}

// New creates an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[string]*entry)}
}

// SetMetrics mirrors the cache counters into a telemetry registry:
// runcache.hits / runcache.misses / runcache.merged / runcache.bypassed
// counters and a runcache.wait_ns histogram over time spent blocked on
// another caller's in-flight run. A nil registry detaches.
func (c *Cache) SetMetrics(r *telemetry.Registry) {
	c.mu.Lock()
	c.metrics = r
	c.mu.Unlock()
}

// SetBackend attaches a persistent second tier: on an in-memory miss
// the backend is consulted, and a successful run's result is written
// through, so memoised outcomes survive process restarts and are shared
// between concurrent processes. Errors are never persisted — only
// results that produced a verdict. A nil backend detaches.
func (c *Cache) SetBackend(b Backend) {
	c.mu.Lock()
	c.backend = b
	c.mu.Unlock()
}

// persistVersion tags the on-disk result encoding; a decoder that sees
// any other version treats the entry as a miss, so the format can
// evolve without migrations (stale entries simply re-run once).
const persistVersion = 1

// persistedResult is the gob envelope for one stored outcome.
type persistedResult struct {
	V   int
	Res *platform.Result
}

// encodeResult serialises a result for the backend.
func encodeResult(r *platform.Result) ([]byte, bool) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(persistedResult{V: persistVersion, Res: r}); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

// decodeResult deserialises a backend payload; any decode failure or
// version mismatch reads as a miss.
func decodeResult(data []byte) (*platform.Result, bool) {
	var p persistedResult
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, false
	}
	if p.V != persistVersion || p.Res == nil {
		return nil, false
	}
	return p.Res, true
}

// Bypass records a run that skipped the cache, for the reuse accounting.
func (c *Cache) Bypass() {
	c.mu.Lock()
	m := c.metrics
	c.stats.Bypassed++
	c.mu.Unlock()
	m.Counter("runcache.bypassed").Inc()
}

// clone deep-copies a result so callers can mutate what they receive
// (triage annotations, detail rewrites) without corrupting the cache.
func clone(r *platform.Result) *platform.Result {
	if r == nil {
		return nil
	}
	out := *r
	if r.State != nil {
		st := *r.State
		out.State = &st
	}
	if r.Checkpoints != nil {
		out.Checkpoints = append([]uint32(nil), r.Checkpoints...)
	}
	return &out
}

// Do returns the outcome cached under key, executing run to produce it
// on first use. Concurrent calls for the same key execute run exactly
// once; the others block and share the outcome. Every caller receives
// its own deep copy. Errors are cached too: a deterministic platform
// fails identically on every replay. The second return reports whether
// the outcome came from the cache (hit or merged) rather than this
// caller's own execution.
//
// If run panics, the panic propagates to the caller that ran it, any
// waiting callers receive an error, and the entry is dropped so a later
// Do retries.
func (c *Cache) Do(key string, run func() (*platform.Result, error)) (*platform.Result, bool, error) {
	c.mu.Lock()
	m := c.metrics
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.ready:
			c.stats.Hits++
			c.mu.Unlock()
			m.Counter("runcache.hits").Inc()
		default:
			c.stats.Merged++
			c.mu.Unlock()
			m.Counter("runcache.merged").Inc()
			t0 := time.Now()
			<-e.ready
			m.Histogram("runcache.wait_ns").Observe(time.Since(t0))
		}
		return clone(e.res), true, e.err
	}
	e := &entry{ready: make(chan struct{})}
	// Pre-set the failure waiters observe if run panics out of this call.
	e.err = fmt.Errorf("runcache: run for key %.12s aborted", key)
	c.entries[key] = e
	c.stats.Entries++
	backend := c.backend
	c.mu.Unlock()

	completed := false
	defer func() {
		if !completed {
			c.mu.Lock()
			if c.entries[key] == e {
				delete(c.entries, key)
				c.stats.Entries--
			}
			c.mu.Unlock()
		}
		close(e.ready)
	}()

	// Persistent second tier: a stored outcome fills the in-memory slot
	// without simulating. The decoded result is cloned on the way in
	// AND out, so no caller ever aliases the bytes another caller (or
	// the cache itself) holds.
	if backend != nil {
		fromStore := func(data []byte) (*platform.Result, bool) {
			res, ok := decodeResult(data)
			if !ok {
				return nil, false
			}
			e.res, e.err = clone(res), nil
			completed = true
			c.mu.Lock()
			c.stats.DiskHits++
			c.mu.Unlock()
			m.Counter("runcache.disk_hits").Inc()
			return clone(res), true
		}
		if data, ok := backend.Get(key); ok {
			if res, ok := fromStore(data); ok {
				return res, true, nil
			}
		}
		// Cross-process singleflight: serialise same-key runners on the
		// key's file lock, then re-check the store for the winner's
		// entry before simulating.
		unlock := backend.Lock(key)
		defer unlock()
		if data, ok := backend.Get(key); ok {
			if res, ok := fromStore(data); ok {
				return res, true, nil
			}
		}
	}

	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	m.Counter("runcache.misses").Inc()
	res, err := run()
	e.res, e.err = clone(res), err
	completed = true
	if err == nil && res != nil && backend != nil {
		if data, ok := encodeResult(res); ok {
			backend.Put(key, data)
		}
	}
	return res, false, err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry)
	c.stats = Stats{}
}
