package runcache

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core/telemetry"
	"repro/internal/obj"
	"repro/internal/platform"
	"repro/internal/soc"
)

func res(code uint32) *platform.Result {
	return &platform.Result{
		Reason:      platform.StopHalt,
		MboxResult:  code,
		MboxDone:    true,
		Cycles:      1234,
		Checkpoints: []uint32{1, 2, 3},
		State:       &platform.ArchState{PC: 0x40, D: [16]uint32{code}},
	}
}

func TestDoCachesAndDeepCopies(t *testing.T) {
	c := New()
	runs := 0
	fill := func() (*platform.Result, error) { runs++; return res(0x600D), nil }

	r1, cached, err := c.Do("k", fill)
	if err != nil || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	r2, cached, err := c.Do("k", fill)
	if err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if runs != 1 {
		t.Fatalf("run executed %d times", runs)
	}
	// Mutating one caller's copy must not corrupt the cache or other
	// callers (triage and the regress runner annotate results in place).
	r1.Checkpoints[0] = 99
	r1.State.PC = 0xdead
	r1.MboxResult = 0
	if r2.Checkpoints[0] != 1 || r2.State.PC != 0x40 || r2.MboxResult != 0x600D {
		t.Fatal("cached result shares memory with a caller's copy")
	}
	r3, _, _ := c.Do("k", fill)
	if r3.Checkpoints[0] != 1 || r3.State.PC != 0x40 {
		t.Fatal("cache entry was corrupted by caller mutation")
	}

	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "2 hits") {
		t.Errorf("stats string: %s", st.String())
	}
}

func TestDoSingleflight(t *testing.T) {
	c := New()
	c.SetMetrics(telemetry.NewRegistry())
	var runs atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, _, err := c.Do("shared", func() (*platform.Result, error) {
				<-gate
				runs.Add(1)
				return res(0x600D), nil
			})
			if err != nil || r.MboxResult != 0x600D {
				t.Errorf("Do: %v %+v", err, r)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Fatalf("run executed %d times, want 1", got)
	}
	st := c.Stats()
	if st.Hits+st.Merged != callers-1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDoCachesErrors(t *testing.T) {
	c := New()
	boom := errors.New("platform wedged")
	runs := 0
	for i := 0; i < 2; i++ {
		_, _, err := c.Do("k", func() (*platform.Result, error) { runs++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if runs != 1 {
		t.Fatalf("failed run executed %d times, want 1 (errors are deterministic too)", runs)
	}
}

func TestDoPanicDropsEntry(t *testing.T) {
	c := New()
	func() {
		defer func() { recover() }()
		c.Do("k", func() (*platform.Result, error) { panic("injected") })
	}()
	r, cached, err := c.Do("k", func() (*platform.Result, error) { return res(7), nil })
	if err != nil || cached || r.MboxResult != 7 {
		t.Fatalf("retry after panic: r=%+v cached=%v err=%v", r, cached, err)
	}
}

func TestBypassCounting(t *testing.T) {
	c := New()
	c.Bypass()
	c.Bypass()
	if st := c.Stats(); st.Bypassed != 2 {
		t.Errorf("bypassed = %d", st.Bypassed)
	}
	c.Reset()
	if st := c.Stats(); st.Bypassed != 0 || st.Entries != 0 {
		t.Errorf("after reset: %+v", st)
	}
}

func TestCacheable(t *testing.T) {
	want := map[platform.Kind]bool{
		platform.KindGolden:   true,
		platform.KindRTL:      true,
		platform.KindGate:     true,
		platform.KindEmulator: false,
		platform.KindBondout:  false,
		platform.KindSilicon:  false,
	}
	for k, w := range want {
		if Cacheable(k) != w {
			t.Errorf("Cacheable(%s) = %v, want %v", k, !w, w)
		}
	}
}

func img(entry uint32, data ...byte) *obj.Image {
	return &obj.Image{
		Entry:    entry,
		Segments: []obj.Segment{{Addr: 0, Data: data}},
	}
}

func TestImageHashAndCellKey(t *testing.T) {
	a := img(0, 1, 2, 3)
	b := img(0, 1, 2, 3)
	cDiff := img(0, 1, 2, 4)
	if ImageHash(a) != ImageHash(b) {
		t.Error("identical images hash differently")
	}
	if ImageHash(a) != ImageHash(a) {
		t.Error("memoised hash unstable")
	}
	if ImageHash(a) == ImageHash(cDiff) {
		t.Error("different contents share a hash")
	}

	hw := soc.DefaultConfig()
	base := CellKey(a, platform.KindRTL, hw, platform.RunSpec{})
	if CellKey(b, platform.KindRTL, hw, platform.RunSpec{}) != base {
		t.Error("key must depend on content, not image identity")
	}
	if CellKey(a, platform.KindGate, hw, platform.RunSpec{}) == base {
		t.Error("key must depend on platform kind")
	}
	hw2 := hw
	hw2.RamWait = 7
	if CellKey(a, platform.KindRTL, hw2, platform.RunSpec{}) == base {
		t.Error("key must depend on hardware config")
	}
	if CellKey(a, platform.KindRTL, hw, platform.RunSpec{MaxInstructions: 5}) == base {
		t.Error("key must depend on run bounds")
	}
}

// TestStatsStringZero pins the all-bypass/empty-matrix rendering: with
// no lookups at all the reuse percentage must read 0.0%, never NaN%.
func TestStatsStringZero(t *testing.T) {
	got := Stats{}.String()
	if !strings.Contains(got, "0.0% reuse") {
		t.Errorf("zero stats render %q, want 0.0%% reuse", got)
	}
	if strings.Contains(got, "NaN") {
		t.Errorf("zero stats render NaN: %q", got)
	}
	// A fresh cache that only ever bypassed must render the same way.
	c := New()
	c.Bypass()
	if s := c.Stats().String(); !strings.Contains(s, "0.0% reuse") || strings.Contains(s, "NaN") {
		t.Errorf("all-bypass stats render %q, want 0.0%% reuse", s)
	}
}

// TestKeysEngineAgnostic pins the purity contract documented on
// CellKey/OutcomeKey: execution engines are bit-identical, so the
// engine knob must NOT reach either cache key — a result computed under
// one engine is served to runs requesting any other.
func TestKeysEngineAgnostic(t *testing.T) {
	a := img(0, 1, 2, 3)
	hw := soc.DefaultConfig()
	engines := []platform.Engine{
		platform.EngineDefault, platform.EngineInterp,
		platform.EnginePredecode, platform.EngineTranslate,
	}
	cellBase := CellKey(a, platform.KindGolden, hw, platform.RunSpec{Engine: engines[0]})
	outBase := OutcomeKey("e", "m", "t", "d", platform.KindGolden, hw, platform.RunSpec{Engine: engines[0]})
	for _, e := range engines[1:] {
		if CellKey(a, platform.KindGolden, hw, platform.RunSpec{Engine: e}) != cellBase {
			t.Errorf("CellKey depends on engine %v", e)
		}
		if OutcomeKey("e", "m", "t", "d", platform.KindGolden, hw, platform.RunSpec{Engine: e}) != outBase {
			t.Errorf("OutcomeKey depends on engine %v", e)
		}
	}

	// End to end: an outcome cached under one engine's run answers a
	// request made with another engine selected, without re-running.
	c := New()
	runs := 0
	spec := platform.RunSpec{Engine: platform.EngineInterp}
	key := CellKey(a, platform.KindGolden, hw, spec)
	r1, hit1, err := c.Do(key, func() (*platform.Result, error) { runs++; return res(0xCAFE), nil })
	if err != nil || hit1 {
		t.Fatalf("first Do: hit=%v err=%v", hit1, err)
	}
	spec2 := platform.RunSpec{Engine: platform.EngineTranslate}
	key2 := CellKey(a, platform.KindGolden, hw, spec2)
	r2, hit2, err := c.Do(key2, func() (*platform.Result, error) { runs++; return res(0xDEAD), nil })
	if err != nil || !hit2 {
		t.Fatalf("cross-engine Do: hit=%v err=%v", hit2, err)
	}
	if runs != 1 {
		t.Errorf("cross-engine request re-ran: %d runs", runs)
	}
	if r1.MboxResult != r2.MboxResult {
		t.Errorf("cached outcome differs across engines: %#x vs %#x", r1.MboxResult, r2.MboxResult)
	}
}
