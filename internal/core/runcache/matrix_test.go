package runcache_test

import (
	"testing"

	"repro/advm"
	"repro/internal/platform"
)

// matrixSpec is the shared regression slice: every family derivative on
// every deterministic platform, UART module only (the matrix is about
// cache behaviour, not module coverage).
func matrixSpec() advm.RegressionSpec {
	return advm.RegressionSpec{
		Derivatives: advm.Family(),
		Kinds:       []advm.Kind{advm.KindGolden, advm.KindRTL, advm.KindGate},
		Modules:     []string{"UART"},
		RunSpec:     advm.RunSpec{MaxInstructions: 200_000},
		Workers:     4,
	}
}

func runMatrix(t *testing.T, spec advm.RegressionSpec) *advm.RegressionReport {
	t.Helper()
	s := advm.StandardSystem()
	label, err := advm.FreezeSystem("runcache-matrix", s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := advm.Regress(s, label, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) == 0 {
		t.Fatal("empty matrix")
	}
	return rep
}

// TestRunCacheMatrixEquivalence is the run-cache correctness property:
// over the full 4-derivative x 3-deterministic-platform matrix, a
// cache-served outcome is indistinguishable from a fresh simulation.
func TestRunCacheMatrixEquivalence(t *testing.T) {
	fresh := runMatrix(t, matrixSpec())

	rc := advm.NewRunCache()
	cold := matrixSpec()
	cold.RunCache = rc
	coldRep := runMatrix(t, cold)

	warm := matrixSpec()
	warm.RunCache = rc
	warmRep := runMatrix(t, warm)

	if n := len(fresh.Outcomes); len(coldRep.Outcomes) != n || len(warmRep.Outcomes) != n {
		t.Fatalf("matrix sizes differ: %d/%d/%d",
			n, len(coldRep.Outcomes), len(warmRep.Outcomes))
	}
	for i := range fresh.Outcomes {
		f, c, w := fresh.Outcomes[i], coldRep.Outcomes[i], warmRep.Outcomes[i]
		for _, pair := range []struct {
			name string
			got  advm.RegressionOutcome
		}{{"cold", c}, {"warm", w}} {
			g := pair.got
			if g.Module != f.Module || g.Test != f.Test || g.Derivative != f.Derivative || g.Platform != f.Platform {
				t.Fatalf("outcome %d (%s): cell coordinates differ", i, pair.name)
			}
			if g.Passed != f.Passed || g.Reason != f.Reason || g.MboxResult != f.MboxResult ||
				g.Cycles != f.Cycles || g.Insts != f.Insts || g.Detail != f.Detail || g.BuildErr != f.BuildErr {
				t.Errorf("outcome %d (%s %s/%s %s %s) diverges from fresh run:\nfresh: %+v\n%s:  %+v",
					i, pair.name, f.Module, f.Test, f.Derivative, f.Platform, f, pair.name, g)
			}
		}
		if c.RunCached {
			t.Errorf("outcome %d: cold run claims cache service", i)
		}
		if !w.RunCached {
			t.Errorf("outcome %d: warm run was not served from cache", i)
		}
	}

	st := rc.Stats()
	cells := len(fresh.Outcomes)
	if st.Misses != uint64(cells) {
		t.Errorf("cold pass: misses = %d, want %d", st.Misses, cells)
	}
	if st.Hits+st.Merged != uint64(cells) {
		t.Errorf("warm pass: hits+merged = %d, want %d", st.Hits+st.Merged, cells)
	}
	if st.Bypassed != 0 {
		t.Errorf("deterministic matrix bypassed %d runs", st.Bypassed)
	}
}

// TestRunCacheBypassesImpureRuns: fault-injection harnesses and
// event-stream observers must execute, never hit the cache.
func TestRunCacheBypassesImpureRuns(t *testing.T) {
	rc := advm.NewRunCache()

	// Prime with a normal pass.
	prime := matrixSpec()
	prime.Kinds = []advm.Kind{advm.KindGolden}
	prime.RunCache = rc
	runMatrix(t, prime)
	primed := rc.Stats()
	if primed.Misses == 0 || primed.Bypassed != 0 {
		t.Fatalf("prime pass: %+v", primed)
	}

	// A fault-injection harness (NewPlatform set) must bypass even
	// though every key is now cached.
	injected := matrixSpec()
	injected.Kinds = []advm.Kind{advm.KindGolden}
	injected.RunCache = rc
	// A stock factory, but its mere presence marks the run impure: the
	// runner cannot know the harness is not injecting faults.
	injected.NewPlatform = func(k advm.Kind, hw advm.HWConfig) (advm.Platform, error) {
		return platform.New(k, hw)
	}
	rep := runMatrix(t, injected)
	for i, o := range rep.Outcomes {
		if o.RunCached {
			t.Errorf("outcome %d: harnessed run served from cache", i)
		}
	}
	st := rc.Stats()
	if st.Bypassed == 0 {
		t.Error("harnessed runs were not counted as bypassed")
	}
	if st.Hits != primed.Hits {
		t.Error("harnessed runs consumed cache hits")
	}

	// An armed trace callback must bypass too.
	traced := matrixSpec()
	traced.Kinds = []advm.Kind{advm.KindGolden}
	traced.RunCache = rc
	traced.RunSpec.Trace = func(advm.TraceRecord) {}
	rep = runMatrix(t, traced)
	for i, o := range rep.Outcomes {
		if o.RunCached {
			t.Errorf("outcome %d: traced run served from cache", i)
		}
	}
	if rc.Stats().Bypassed <= st.Bypassed {
		t.Error("traced runs were not counted as bypassed")
	}
}

// TestRunCacheBypassesNondeterministicKinds: the emulator's timing model
// is approximate, so its runs are never memoised.
func TestRunCacheBypassesNondeterministicKinds(t *testing.T) {
	rc := advm.NewRunCache()
	spec := matrixSpec()
	spec.Kinds = []advm.Kind{advm.KindEmulator}
	spec.RunCache = rc
	rep := runMatrix(t, spec)
	for i, o := range rep.Outcomes {
		if o.RunCached {
			t.Errorf("outcome %d: emulator run served from cache", i)
		}
	}
	st := rc.Stats()
	if st.Bypassed != uint64(len(rep.Outcomes)) || st.Misses != 0 {
		t.Errorf("stats = %+v, want all %d runs bypassed", st, len(rep.Outcomes))
	}
}
