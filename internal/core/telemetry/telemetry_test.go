package telemetry

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRingBoundedOverwrite(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvInstRetired, PC: uint32(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Total() != 10 || r.Dropped() != 6 {
		t.Errorf("total/dropped = %d/%d, want 10/6", r.Total(), r.Dropped())
	}
	evs := r.Events()
	for i, e := range evs {
		if want := uint32(6 + i); e.PC != want {
			t.Errorf("event %d pc = %d, want %d (oldest-first order)", i, e.PC, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Total() != 0 {
		t.Error("reset did not empty the ring")
	}
}

func TestRingPartialFill(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{PC: 1})
	r.Emit(Event{PC: 2})
	evs := r.Events()
	if len(evs) != 2 || evs[0].PC != 1 || evs[1].PC != 2 {
		t.Fatalf("events = %+v", evs)
	}
	if r.Dropped() != 0 {
		t.Errorf("dropped = %d, want 0", r.Dropped())
	}
}

func TestEventMask(t *testing.T) {
	if !EventMask(0).Effective().Has(EvUARTByte) {
		t.Error("zero mask must be effective-all")
	}
	m, err := ParseKinds("inst,mem,irq")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []EventKind{EvInstRetired, EvMemRead, EvMemWrite, EvIRQEnter, EvIRQExit} {
		if !m.Has(k) {
			t.Errorf("mask missing %s", k)
		}
	}
	for _, k := range []EventKind{EvRegWrite, EvTrap, EvUARTByte} {
		if m.Has(k) {
			t.Errorf("mask should not include %s", k)
		}
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Error("unknown kind must be rejected")
	}
	if m, _ := ParseKinds("all"); m != MaskAll {
		t.Error("'all' must select everything")
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EvRegWrite, PC: 0x100, Reg: 3, Value: 0xAB}
	if s := e.String(); !strings.Contains(s, "d3") || !strings.Contains(s, "0x000000ab") {
		t.Errorf("event string: %s", s)
	}
	if RegName(16) != "a0" || RegName(RegPSW) != "psw" {
		t.Error("register naming wrong")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("cells").Inc()
				r.Histogram("lat").ObserveNanos(int64(i))
				r.Gauge("g").Set(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("cells").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("lat").Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Gauge("y").Set(9)
	r.Histogram("z").Observe(time.Millisecond)
	if r.Counter("x").Value() != 0 || r.Histogram("z").Count() != 0 {
		t.Error("nil registry must report zeros")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 {
		t.Error("nil registry snapshot must be empty")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.ObserveNanos(1000) // band (512,1024]: Len64=10, upper bound 1024
	}
	h.ObserveNanos(1 << 20)
	if p50 := h.QuantileNanos(0.5); p50 != 1024 {
		t.Errorf("p50 = %d, want 1024", p50)
	}
	if max := h.MaxNanos(); max != 1<<20 {
		t.Errorf("max = %d", max)
	}
	if mean := h.MeanNanos(); mean < 1000 || mean > 12000 {
		t.Errorf("mean = %f", mean)
	}
}

func TestRegistryJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_count").Add(2)
	r.Counter("a_count").Add(1)
	r.Histogram("lat").ObserveNanos(5000)
	var one, two strings.Builder
	if err := r.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Error("registry JSON must be deterministic")
	}
	var parsed Snapshot
	if err := json.Unmarshal([]byte(one.String()), &parsed); err != nil {
		t.Fatalf("registry JSON does not parse: %v", err)
	}
	if parsed.Counters["a_count"] != 1 || parsed.Counters["b_count"] != 2 {
		t.Errorf("snapshot round-trip: %+v", parsed)
	}
}

func TestTimelineChromeTrace(t *testing.T) {
	tl := NewTimeline()
	tl.NameLane(0, "worker-0")
	start := tl.Start()
	tl.Span("build NVM/T1", "build", 0, start, 3*time.Millisecond,
		map[string]any{"deriv": "SC88-A"})
	tl.Span("run NVM/T1", "run", 0, start.Add(3*time.Millisecond), time.Millisecond, nil)
	tl.Instant("triage", "triage", 0, nil)
	var sb strings.Builder
	if err := tl.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("events = %d, want 4", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e["ph"].(string)]++
		if e["pid"].(float64) != 1 {
			t.Error("pid must be 1")
		}
	}
	if phases["X"] != 2 || phases["M"] != 1 || phases["i"] != 1 {
		t.Errorf("phases = %v", phases)
	}
	// The span must carry its duration in microseconds.
	for _, e := range doc.TraceEvents {
		if e["name"] == "build NVM/T1" {
			if dur := e["dur"].(float64); dur < 2999 || dur > 3001 {
				t.Errorf("dur = %f us, want ~3000", dur)
			}
		}
	}
}

func TestNilTimelineSafe(t *testing.T) {
	var tl *Timeline
	tl.Span("x", "c", 0, time.Now(), time.Second, nil)
	tl.Instant("y", "c", 0, nil)
	tl.NameLane(0, "w")
	var sb strings.Builder
	if err := tl.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Error("nil timeline must still render an empty trace")
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	var s EventSink = SinkFunc(func(Event) bool { n++; return n < 3 })
	for i := 0; i < 5; i++ {
		if !s.Emit(Event{}) {
			break
		}
	}
	if n != 3 {
		t.Errorf("sink called %d times, want 3 (stop honoured)", n)
	}
}
