package telemetry

// The metrics registry: named counters, gauges, and latency histograms,
// safe for concurrent use by regression workers, the build cache's
// singleflight fills, and the assembler. Instruments are created on
// first use and live for the registry's lifetime; reads are atomic, so
// the hot-path cost of an armed counter is one atomic add.

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. All methods are no-ops
// on a nil counter, so instruments fetched from a nil registry need no
// guards at the call site.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value. Methods are nil-safe.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a latency histogram: bucket i
// counts observations with bits.Len64(nanos) == i, i.e. power-of-two
// nanosecond bands from <1ns to ~9.2s and beyond.
const histBuckets = 64

// Histogram is a latency histogram over power-of-two nanosecond
// buckets. Observations are lock-free.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one latency. Methods are nil-safe.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(d.Nanoseconds()) }

// ObserveNanos records one latency in nanoseconds.
func (h *Histogram) ObserveNanos(nanos int64) {
	if h == nil {
		return
	}
	if nanos < 0 {
		nanos = 0
	}
	h.buckets[bits.Len64(uint64(nanos))].Add(1)
	h.count.Add(1)
	h.sum.Add(nanos)
	for {
		cur := h.max.Load()
		if nanos <= cur || h.max.CompareAndSwap(cur, nanos) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumNanos reports the summed latency.
func (h *Histogram) SumNanos() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// MaxNanos reports the largest observation.
func (h *Histogram) MaxNanos() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// MeanNanos reports the average latency.
func (h *Histogram) MeanNanos() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// QuantileNanos approximates the q-quantile (0 < q <= 1) as the upper
// bound of the bucket holding the q-th observation — accurate to the
// power-of-two band, which is what a latency SLO needs.
func (h *Histogram) QuantileNanos(q float64) int64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1 << i // upper bound of band [2^(i-1), 2^i)
		}
	}
	return h.max.Load()
}

// Registry is a concurrency-safe collection of named instruments. The
// zero value is not usable; call NewRegistry. A nil *Registry is safe to
// pass around: the instrument getters on a nil registry return nil, and
// all instrument methods are nil-safe no-ops, so call sites need no
// guards.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count     uint64  `json:"count"`
	SumNanos  int64   `json:"sum_nanos"`
	MeanNanos float64 `json:"mean_nanos"`
	P50Nanos  int64   `json:"p50_nanos"`
	P90Nanos  int64   `json:"p90_nanos"`
	P99Nanos  int64   `json:"p99_nanos"`
	MaxNanos  int64   `json:"max_nanos"`
}

// Snapshot is a point-in-time copy of every instrument.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Safe while writers are active; each
// instrument is read atomically.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count:     h.Count(),
			SumNanos:  h.SumNanos(),
			MeanNanos: h.MeanNanos(),
			P50Nanos:  h.QuantileNanos(0.50),
			P90Nanos:  h.QuantileNanos(0.90),
			P99Nanos:  h.QuantileNanos(0.99),
			MaxNanos:  h.MaxNanos(),
		}
	}
	return s
}

// WriteJSON renders the registry as indented JSON with deterministic
// (sorted) key order.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Names lists every instrument name, sorted, for summaries.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
