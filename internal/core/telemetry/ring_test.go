package telemetry

// Concurrency coverage for the event substrate: the ring's wraparound
// accounting and EventMask filtering must stay exact when many platform
// goroutines emit at once (the regression matrix runs one simulation
// per worker, all feeding shared sinks).

import (
	"sync"
	"testing"
)

func TestRingWraparoundConcurrent(t *testing.T) {
	const cap, emitters, per = 64, 8, 1000
	r := NewRing(cap)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Event{Kind: EvInstRetired, PC: uint32(g<<16 | i)})
			}
		}(g)
	}
	wg.Wait()

	if r.Len() != cap {
		t.Fatalf("Len = %d, want %d", r.Len(), cap)
	}
	if r.Total() != emitters*per {
		t.Fatalf("Total = %d, want %d", r.Total(), emitters*per)
	}
	if r.Dropped() != emitters*per-cap {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), emitters*per-cap)
	}
	evs := r.Events()
	if len(evs) != cap {
		t.Fatalf("Events returned %d, want %d", len(evs), cap)
	}
	// Every surviving event must be one that was actually emitted, and
	// per-goroutine order must be preserved (the ring is FIFO under one
	// lock, so each goroutine's PCs appear in increasing order).
	lastPerG := map[int]int{}
	for _, e := range evs {
		g, i := int(e.PC>>16), int(e.PC&0xFFFF)
		if g >= emitters || i >= per {
			t.Fatalf("ring contains an event never emitted: pc=%#x", e.PC)
		}
		if last, seen := lastPerG[g]; seen && i <= last {
			t.Fatalf("goroutine %d events reordered: %d after %d", g, i, last)
		}
		lastPerG[g] = i
	}

	r.Reset()
	if r.Len() != 0 || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear counters")
	}
}

func TestRingWraparoundExactSuffix(t *testing.T) {
	// A capacity that does not divide the emit count: the ring must hold
	// exactly the last cap events, oldest first.
	const cap, total = 7, 23
	r := NewRing(cap)
	for i := 0; i < total; i++ {
		r.Emit(Event{Kind: EvMemWrite, PC: uint32(i)})
	}
	evs := r.Events()
	if len(evs) != cap {
		t.Fatalf("len = %d, want %d", len(evs), cap)
	}
	for i, e := range evs {
		if want := uint32(total - cap + i); e.PC != want {
			t.Fatalf("event %d pc = %d, want %d", i, e.PC, want)
		}
	}
}

func TestEventMaskFilterConcurrent(t *testing.T) {
	// A masked sink in front of the ring — the composition platforms use
	// when -events selects a subset. Under concurrent emitters of every
	// kind, only masked kinds may land in the ring and none may be lost.
	mask, err := ParseKinds("mem")
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(1 << 16)
	filtered := SinkFunc(func(e Event) bool {
		if !mask.Effective().Has(e.Kind) {
			return false
		}
		return ring.Emit(e)
	})

	kinds := []EventKind{EvInstRetired, EvRegWrite, EvMemRead, EvMemWrite, EvTrap, EvIRQEnter, EvIRQExit, EvUARTByte}
	// per is a multiple of len(kinds) so every kind is emitted equally.
	const emitters, per = 8, 512
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				filtered.Emit(Event{Kind: kinds[i%len(kinds)], PC: uint32(i)})
			}
		}(g)
	}
	wg.Wait()

	// Each goroutine emits per/len(kinds) events of each kind; "mem"
	// selects exactly EvMemRead and EvMemWrite.
	want := uint64(emitters * (per / len(kinds)) * 2)
	if ring.Total() != want {
		t.Fatalf("filtered ring total = %d, want %d", ring.Total(), want)
	}
	for _, e := range ring.Events() {
		if e.Kind != EvMemRead && e.Kind != EvMemWrite {
			t.Fatalf("unmasked kind %s leaked through the filter", e.Kind)
		}
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events despite ample capacity", ring.Dropped())
	}
}
