package telemetry

// Timeline collects wall-clock spans and instants and exports them in
// the Chrome trace-event JSON format, loadable in Perfetto or
// chrome://tracing. The regression runner records one span per cell
// build and per cell run, keyed by worker, so a matrix run renders as a
// per-worker lane diagram: build latency, run latency, cache effects,
// and worker imbalance become visible at a glance.

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// chromeEvent is one entry of the traceEvents array. Fields follow the
// Trace Event Format: ph "X" is a complete span (ts+dur), "i" an
// instant, "M" metadata (thread names). Timestamps are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Timeline is a concurrency-safe span collector. The zero value is not
// usable; call NewTimeline. A nil *Timeline swallows records, so call
// sites need no guards.
type Timeline struct {
	mu     sync.Mutex
	start  time.Time
	events []chromeEvent
}

// NewTimeline creates a timeline whose clock starts now.
func NewTimeline() *Timeline {
	return &Timeline{start: time.Now()}
}

// Start returns the timeline's epoch; spans are expressed relative to it.
func (t *Timeline) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

func (t *Timeline) add(e chromeEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// micros converts a wall-clock instant to trace microseconds.
func (t *Timeline) micros(at time.Time) float64 {
	return float64(at.Sub(t.start).Nanoseconds()) / 1e3
}

// Span records a completed span on lane tid, started at start and
// lasting dur. args are attached verbatim (keep them small).
func (t *Timeline) Span(name, cat string, tid int, start time.Time, dur time.Duration, args map[string]any) {
	if t == nil {
		return
	}
	t.add(chromeEvent{
		Name: name, Cat: cat, Ph: "X",
		Ts:  t.micros(start),
		Dur: float64(dur.Nanoseconds()) / 1e3,
		Pid: 1, Tid: tid, Args: args,
	})
}

// Instant records a point event on lane tid at time now.
func (t *Timeline) Instant(name, cat string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.add(chromeEvent{
		Name: name, Cat: cat, Ph: "i", S: "t",
		Ts:  t.micros(time.Now()),
		Pid: 1, Tid: tid, Args: args,
	})
}

// NameLane attaches a human-readable name to lane tid (rendered as the
// thread name in Perfetto).
func (t *Timeline) NameLane(tid int, name string) {
	if t == nil {
		return
	}
	t.add(chromeEvent{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": name},
	})
}

// NameProcess attaches a human-readable name to the trace's single
// process (rendered as the process title in Perfetto — e.g. the matrix
// release label, so stacked traces are tellable apart).
func (t *Timeline) NameProcess(name string) {
	if t == nil {
		return
	}
	t.add(chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1,
		Args: map[string]any{"name": name},
	})
}

// Len reports the number of recorded events.
func (t *Timeline) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeTrace is the JSON object format root ({"traceEvents": [...]}),
// which both Perfetto and chrome://tracing accept.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"metadata,omitempty"`
}

// WriteChromeTrace renders the timeline as Chrome trace-event JSON.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		t.mu.Unlock()
	}
	if evs == nil {
		evs = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{
		TraceEvents: evs,
		Metadata:    map[string]any{"producer": "advm telemetry"},
	})
}
