package telemetry

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestSampleRuntime(t *testing.T) {
	runtime.GC() // guarantee at least one pause histogram entry
	s := SampleRuntime(nil)
	if s.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", s.Goroutines)
	}
	if s.HeapBytes <= 0 {
		t.Fatalf("heap bytes = %d, want > 0", s.HeapBytes)
	}
	if s.GCCycles < 1 {
		t.Fatalf("gc cycles = %d, want >= 1 after runtime.GC", s.GCCycles)
	}
	if s.GCPauseMaxNs < s.GCPauseP50Ns {
		t.Fatalf("pause max %d < p50 %d", s.GCPauseMaxNs, s.GCPauseP50Ns)
	}
}

func TestSampleRuntimeSetsGauges(t *testing.T) {
	r := NewRegistry()
	s := SampleRuntime(r)
	if got := r.Gauge("runtime.goroutines").Value(); got != s.Goroutines {
		t.Fatalf("gauge goroutines = %d, sample = %d", got, s.Goroutines)
	}
	if got := r.Gauge("runtime.heap_bytes").Value(); got <= 0 {
		t.Fatalf("gauge heap_bytes = %d, want > 0", got)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "runtime.goroutines") {
		t.Fatalf("metrics dump missing runtime gauges:\n%s", buf.String())
	}
}

func TestSampleRuntimeConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				SampleRuntime(r)
			}
		}()
	}
	wg.Wait()
	if r.Gauge("runtime.goroutines").Value() < 1 {
		t.Fatal("gauge lost under concurrent sampling")
	}
}

func TestTimelineProcessName(t *testing.T) {
	tl := NewTimeline()
	tl.NameProcess("advm matrix rel-1")
	tl.NameLane(2, "rtl")
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	var gotProcess, gotThread bool
	for _, e := range trace.TraceEvents {
		switch e.Name {
		case "process_name":
			gotProcess = true
			if e.Ph != "M" || e.Pid != 1 || e.Args["name"] != "advm matrix rel-1" {
				t.Fatalf("process_name metadata = %+v", e)
			}
		case "thread_name":
			gotThread = true
			if e.Ph != "M" || e.Tid != 2 || e.Args["name"] != "rtl" {
				t.Fatalf("thread_name metadata = %+v", e)
			}
		}
	}
	if !gotProcess || !gotThread {
		t.Fatalf("metadata records missing (process %v, thread %v):\n%s", gotProcess, gotThread, buf.String())
	}

	// Nil timeline stays a no-op.
	var nilTL *Timeline
	nilTL.NameProcess("x")
}
