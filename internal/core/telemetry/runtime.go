package telemetry

// Go-runtime health sampling for long matrix runs: a thin veneer over
// runtime/metrics that snapshots the few signals worth watching while a
// regression grinds (goroutine count, live heap, GC pause tail) and
// mirrors them into Registry gauges so they ride along in -metrics-out
// dumps and the journal's runtime records.

import (
	"runtime/metrics"
	"time"
)

// RuntimeSample is one reading of the Go runtime's health.
type RuntimeSample struct {
	// Goroutines is the live goroutine count.
	Goroutines int64
	// HeapBytes is the size of live heap objects.
	HeapBytes int64
	// GCCycles is the total completed GC cycles since process start.
	GCCycles int64
	// GCPauseP50Ns and GCPauseMaxNs summarise the stop-the-world pause
	// distribution since process start (zero before the first GC).
	GCPauseP50Ns int64
	GCPauseMaxNs int64
}

// runtimeSamples are the runtime/metrics names SampleRuntime reads, in
// the order of the sample slice below.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
}

// SampleRuntime reads the runtime's health and, when r is non-nil,
// mirrors the reading into r's "runtime.*" gauges (runtime.goroutines,
// runtime.heap_bytes, runtime.gc_cycles, runtime.gc_pause_p50_ns,
// runtime.gc_pause_max_ns). Safe to call from any goroutine; a nil
// registry just returns the sample.
func SampleRuntime(r *Registry) RuntimeSample {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	var s RuntimeSample
	if samples[0].Value.Kind() == metrics.KindUint64 {
		s.Goroutines = int64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		s.HeapBytes = int64(samples[1].Value.Uint64())
	}
	if samples[2].Value.Kind() == metrics.KindUint64 {
		s.GCCycles = int64(samples[2].Value.Uint64())
	}
	if samples[3].Value.Kind() == metrics.KindFloat64Histogram {
		s.GCPauseP50Ns, s.GCPauseMaxNs = pauseQuantiles(samples[3].Value.Float64Histogram())
	}

	if r != nil {
		r.Gauge("runtime.goroutines").Set(s.Goroutines)
		r.Gauge("runtime.heap_bytes").Set(s.HeapBytes)
		r.Gauge("runtime.gc_cycles").Set(s.GCCycles)
		r.Gauge("runtime.gc_pause_p50_ns").Set(s.GCPauseP50Ns)
		r.Gauge("runtime.gc_pause_max_ns").Set(s.GCPauseMaxNs)
	}
	return s
}

// pauseQuantiles walks a runtime/metrics pause histogram (bucket
// boundaries in seconds) and returns the p50 and the max observed
// bucket, in nanoseconds. The max uses the bucket's lower bound so a
// +Inf tail bucket still yields a finite number.
func pauseQuantiles(h *metrics.Float64Histogram) (p50, max int64) {
	if h == nil {
		return 0, 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	toNs := func(sec float64) int64 { return int64(sec * float64(time.Second)) }
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		// Buckets[i] and Buckets[i+1] bound counts[i]; use the upper bound
		// for the quantile, the lower bound when the upper is +Inf.
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		bound := hi
		if bound > 1e18 || bound != bound { // +Inf or NaN guard
			bound = lo
		}
		if p50 == 0 && cum*2 >= total {
			p50 = toNs(bound)
		}
		max = toNs(bound)
	}
	return p50, max
}
