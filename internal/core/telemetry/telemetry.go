// Package telemetry is the unified observability layer of the ADVM
// reproduction: a structured execution-trace event stream with a bounded
// ring buffer, a concurrency-safe metrics registry, and a Chrome
// trace-event (Perfetto-loadable) timeline exporter.
//
// The paper's six-platform ladder differs chiefly in observability —
// platform.Caps already models per-platform trace/register/memory
// visibility — and this package gives that model teeth: platforms whose
// trace port exists emit Events at their fidelity (the golden model
// fully; RTL and gate-level at instruction+register granularity; bondout
// through its bonded-out trace port), while platforms without one refuse
// with platform.ErrNoTrace. The package is a leaf: it imports only the
// standard library, so the assembler, the build cache, the platforms,
// and the regression runner can all depend on it without cycles.
package telemetry

import (
	"fmt"
	"strings"
	"sync"
)

// EventKind enumerates the execution-trace event classes.
type EventKind uint8

// Event kinds.
const (
	// EvInstRetired: one instruction executed. PC and Disasm identify it;
	// Insts/Cycles are the counters after retirement.
	EvInstRetired EventKind = iota
	// EvMemRead: a data-space read. Addr/Value carry the access.
	EvMemRead
	// EvMemWrite: a data-space write. Addr/Value carry the access.
	EvMemWrite
	// EvRegWrite: an architectural register changed. Reg names it (see
	// RegName), Value is the new contents.
	EvRegWrite
	// EvIRQEnter: an asynchronous interrupt was dispatched. Addr is the
	// handler entry, Value the ICAUSE code.
	EvIRQEnter
	// EvIRQExit: an RFE returned from a trap or interrupt handler. Addr
	// is the resume PC.
	EvIRQExit
	// EvTrap: a synchronous trap was dispatched (fault, TRAP, illegal).
	// Addr is the handler entry, Value the ICAUSE code.
	EvTrap
	// EvUARTByte: a byte left the UART shifter. Value holds the byte.
	EvUARTByte

	numEventKinds
)

func (k EventKind) String() string {
	switch k {
	case EvInstRetired:
		return "inst"
	case EvMemRead:
		return "mem-read"
	case EvMemWrite:
		return "mem-write"
	case EvRegWrite:
		return "reg-write"
	case EvIRQEnter:
		return "irq-enter"
	case EvIRQExit:
		return "irq-exit"
	case EvTrap:
		return "trap"
	case EvUARTByte:
		return "uart-byte"
	}
	return "event?"
}

// Bit returns the kind's mask bit.
func (k EventKind) Bit() EventMask { return 1 << k }

// EventMask selects event kinds. The zero mask means "everything" at the
// RunSpec level (callers that don't care get full fidelity); use Has on
// an Effective() mask when filtering.
type EventMask uint16

// MaskAll selects every event kind.
const MaskAll EventMask = 1<<numEventKinds - 1

// MaskInstOnly selects instruction-retirement events only.
const MaskInstOnly = EventMask(1) << EvInstRetired

// Has reports whether the mask includes kind.
func (m EventMask) Has(k EventKind) bool { return m&k.Bit() != 0 }

// Effective maps the zero mask to MaskAll.
func (m EventMask) Effective() EventMask {
	if m == 0 {
		return MaskAll
	}
	return m
}

// ParseKinds parses a comma-separated kind list ("inst,mem,reg,irq,
// trap,uart") into a mask. "all" or "" yields MaskAll. "mem" selects
// both read and write; "irq" selects enter and exit.
func ParseKinds(s string) (EventMask, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return MaskAll, nil
	}
	var m EventMask
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "inst":
			m |= EvInstRetired.Bit()
		case "mem":
			m |= EvMemRead.Bit() | EvMemWrite.Bit()
		case "mem-read":
			m |= EvMemRead.Bit()
		case "mem-write":
			m |= EvMemWrite.Bit()
		case "reg", "reg-write":
			m |= EvRegWrite.Bit()
		case "irq":
			m |= EvIRQEnter.Bit() | EvIRQExit.Bit()
		case "trap":
			m |= EvTrap.Bit()
		case "uart", "uart-byte":
			m |= EvUARTByte.Bit()
		case "":
		default:
			return 0, fmt.Errorf("telemetry: unknown event kind %q (inst, mem, reg, irq, trap, uart, all)", part)
		}
	}
	if m == 0 {
		return MaskAll, nil
	}
	return m, nil
}

// Register codes for Event.Reg.
const (
	RegD0  uint8 = 0  // d0..d15 are 0..15
	RegA0  uint8 = 16 // a0..a15 are 16..31
	RegPSW uint8 = 32
	RegPC  uint8 = 33
)

// RegName renders a register code.
func RegName(code uint8) string {
	switch {
	case code < 16:
		return fmt.Sprintf("d%d", code)
	case code < 32:
		return fmt.Sprintf("a%d", code-16)
	case code == RegPSW:
		return "psw"
	case code == RegPC:
		return "pc"
	}
	return fmt.Sprintf("r?%d", code)
}

// Event is one execution-trace record. The meaning of Addr, Value and
// Reg depends on Kind; Seq is the per-run emission sequence number and
// Insts/Cycles snapshot the platform's counters at emission time.
type Event struct {
	Kind   EventKind `json:"kind"`
	Seq    uint64    `json:"seq"`
	PC     uint32    `json:"pc"`
	Addr   uint32    `json:"addr,omitempty"`
	Value  uint32    `json:"value,omitempty"`
	Reg    uint8     `json:"reg,omitempty"`
	Disasm string    `json:"disasm,omitempty"`
	Insts  uint64    `json:"insts"`
	Cycles uint64    `json:"cycles"`
}

// String renders a one-line human-readable form.
func (e Event) String() string {
	switch e.Kind {
	case EvInstRetired:
		return fmt.Sprintf("%-9s pc=0x%08x %s", e.Kind, e.PC, e.Disasm)
	case EvMemRead, EvMemWrite:
		return fmt.Sprintf("%-9s pc=0x%08x [0x%08x] = 0x%08x", e.Kind, e.PC, e.Addr, e.Value)
	case EvRegWrite:
		return fmt.Sprintf("%-9s pc=0x%08x %s = 0x%08x", e.Kind, e.PC, RegName(e.Reg), e.Value)
	case EvIRQEnter, EvTrap:
		return fmt.Sprintf("%-9s pc=0x%08x handler=0x%08x cause=0x%x", e.Kind, e.PC, e.Addr, e.Value)
	case EvIRQExit:
		return fmt.Sprintf("%-9s pc=0x%08x resume=0x%08x", e.Kind, e.PC, e.Addr)
	case EvUARTByte:
		return fmt.Sprintf("%-9s pc=0x%08x byte=0x%02x", e.Kind, e.PC, e.Value)
	}
	return fmt.Sprintf("%-9s pc=0x%08x", e.Kind, e.PC)
}

// EventSink receives execution-trace events. Emit returns false to ask
// the emitting platform to stop the run (the run ends with
// StopReason "aborted"); sinks that never stop simply return true.
// Platforms call Emit from the simulation goroutine only, but a sink may
// be shared between concurrently running platforms, so implementations
// must be safe for concurrent use.
type EventSink interface {
	Emit(Event) bool
}

// SinkFunc adapts a function to an EventSink.
type SinkFunc func(Event) bool

// Emit implements EventSink.
func (f SinkFunc) Emit(e Event) bool { return f(e) }

// DefaultRingCapacity bounds a Ring created with capacity <= 0.
const DefaultRingCapacity = 1 << 16

// Ring is a bounded event ring buffer: the canonical EventSink for
// post-mortem inspection. When full it overwrites the oldest events and
// counts them as dropped — exactly what a hardware trace buffer does.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing creates a ring holding up to capacity events
// (DefaultRingCapacity if capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements EventSink; it never requests a stop.
func (r *Ring) Emit(e Event) bool {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
		r.full = true
	}
	r.total++
	r.mu.Unlock()
	return true
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Len reports the number of buffered events.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total reports every event ever emitted, including overwritten ones.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped reports how many events were overwritten.
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total - uint64(len(r.buf))
}

// Reset empties the ring.
func (r *Ring) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next = 0
	r.full = false
	r.total = 0
}

// CountByKind tallies the buffered events per kind.
func (r *Ring) CountByKind() map[EventKind]int {
	out := map[EventKind]int{}
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}
