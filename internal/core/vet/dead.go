package vet

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
)

// deadFindings is the dead-abstraction pass: Global Defines and Base
// Functions that no test of their environment can reach. Liveness
// propagates through the abstraction layer itself — a define used only
// by a live base function is live, a base function called only by
// another live base function is live — so the report names exactly the
// entries that could be deleted without changing any test build.
func deadFindings(s *sysenv.System, opts Options) []Finding {
	if !opts.enabled(CheckDeadDefine) && !opts.enabled(CheckDeadBaseFunc) {
		return nil
	}
	var out []Finding
	for _, e := range s.Envs() {
		out = append(out, deadInEnv(e, opts)...)
	}
	return out
}

func deadInEnv(e *env.Env, opts Options) []Finding {
	// uses[name] = identifiers the abstraction-layer item references.
	uses := make(map[string]map[string]bool)
	isItem := make(map[string]bool)

	defineNames := e.Defines.Names()
	for _, name := range defineNames {
		entry, _ := e.Defines.Get(name)
		set := make(map[string]bool)
		identsOf(entry.Default, set)
		for _, expr := range entry.PerDerivative {
			identsOf(expr, set)
		}
		for _, expr := range entry.PerPlatform {
			identsOf(expr, set)
		}
		uses[name] = set
		isItem[name] = true
	}
	funcNames := e.Funcs.Names()
	for _, name := range funcNames {
		fn, _ := e.Funcs.Get(name)
		set := make(map[string]bool)
		for _, line := range strings.Split(fn.Body, "\n") {
			identsOf(line, set)
		}
		uses[name] = set
		isItem[name] = true
	}

	// Roots: identifiers the test authors wrote.
	live := make(map[string]bool)
	var work []string
	mark := func(name string) {
		if isItem[name] && !live[name] {
			live[name] = true
			work = append(work, name)
		}
	}
	for _, t := range e.Tests() {
		roots := make(map[string]bool)
		for _, line := range strings.Split(t.Source, "\n") {
			identsOf(line, roots)
		}
		for name := range roots {
			mark(name)
		}
	}
	for len(work) > 0 {
		name := work[len(work)-1]
		work = work[:len(work)-1]
		for used := range uses[name] {
			mark(used)
		}
	}

	var out []Finding
	if opts.enabled(CheckDeadDefine) {
		for _, name := range defineNames {
			if live[name] {
				continue
			}
			out = append(out, finding(CheckDeadDefine, Finding{
				Path:   e.Module + "/" + env.GlobalsFile,
				Module: e.Module,
				Message: fmt.Sprintf("Global Define %s is never reached by any test of module %s (directly or through a live Base Function)",
					name, e.Module),
			}))
		}
	}
	if opts.enabled(CheckDeadBaseFunc) {
		for _, name := range funcNames {
			if live[name] {
				continue
			}
			out = append(out, finding(CheckDeadBaseFunc, Finding{
				Path:   e.Module + "/" + env.BaseFuncsFile,
				Module: e.Module,
				Message: fmt.Sprintf("Base Function %s is never called by any test of module %s (directly or through a live Base Function)",
					name, e.Module),
			}))
		}
	}
	return out
}

// identsOf lexes one line of assembler text and collects its identifier
// spellings. Lex errors just end the line early — partial tokens are
// still collected.
func identsOf(text string, into map[string]bool) {
	toks, _ := asm.LexLine("", 0, text)
	for _, t := range toks {
		if t.Kind == asm.TokIdent {
			into[t.Text] = true
		}
	}
}
