package vet

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/derivative"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
)

// injectTest clones the shipped system with one extra test added to the
// named module.
func injectTest(t *testing.T, module string, cell env.TestCell) *sysenv.System {
	t.Helper()
	s := content.PortedSystem()
	sys := sysenv.New("SYS")
	for _, m := range s.Modules() {
		e, _ := s.Env(m)
		if m == module {
			e = e.Clone()
			e.MustAddTest(cell)
		}
		if err := sys.AddEnv(e); err != nil {
			t.Fatalf("AddEnv(%s): %v", m, err)
		}
	}
	return sys
}

// findingsFor filters a report down to one test's findings.
func findingsFor(r *Report, testID string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Test == testID {
			out = append(out, f)
		}
	}
	return out
}

func countByCheck(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Check]++
	}
	return m
}

func TestShippedSuiteHasNoErrors(t *testing.T) {
	r := Check(content.PortedSystem(), NewOptions())
	for _, f := range r.Findings {
		if f.Severity >= SevError {
			t.Errorf("error-severity finding on the shipped suite: %s", f)
		}
	}
	if r.Suppressed != 0 {
		t.Errorf("shipped suite needs %d suppressions; it should be clean as written", r.Suppressed)
	}
}

func TestGlobalNamesExtraction(t *testing.T) {
	names := globalNames(derivative.A())
	for _, want := range []string{
		"UART_BASE", "UART_DR_OFF", "NVMC_PAGESEL_OFF",
		"ES_Init_Register", "ES_Uart_Send", "Default_Trap_Handler",
	} {
		if !names[want] {
			t.Errorf("global names missing %q", want)
		}
	}
	if names["_start"] {
		t.Error("_start should be exempt")
	}
	// SEC publishes the renamed register.
	sec := globalNames(derivative.SEC())
	if !sec["UART_DATA_OFF"] {
		t.Error("SEC global names missing renamed register")
	}
}

// TestViolatingTestFlagged injects the paper's Figure 2 style abuse and
// confirms the analyzer catches every class — and nothing outside the
// abusive test.
func TestViolatingTestFlagged(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID:          "TEST_NVM_ABUSE",
		Description: "deliberately bypasses the abstraction layer",
		Source: `;; abusive test (Figure 2)
.INCLUDE "registers.inc"
test_main:
    LOAD d14, [0x80002014]
    INSERT d14, d14, 8, 0, 5
    STORE [0x80002014], d14
    LOAD d13, 0x12345
    LOAD a12, ES_Nvm_Unlock
    CALL a12
    CALL Base_Report_Pass
`,
	})
	r := Check(sys, NewOptions())
	for _, f := range r.Findings {
		if f.Severity >= SevError && f.Test != "TEST_NVM_ABUSE" {
			t.Errorf("error outside the abusive test: %s", f)
		}
	}
	abuse := findingsFor(r, "TEST_NVM_ABUSE")
	got := countByCheck(abuse)
	if got[CheckBypassInclude] != 1 {
		t.Errorf("bypass-include count = %d, want 1; findings: %v", got[CheckBypassInclude], abuse)
	}
	// ES_Nvm_Unlock is a global-layer label; CallAddr comes from
	// Globals.inc so it must NOT be flagged.
	if got[CheckGlobalRef] != 1 {
		t.Errorf("global-ref count = %d, want 1 (ES_Nvm_Unlock); findings: %v", got[CheckGlobalRef], abuse)
	}
	// Two literals inside the NVM controller block.
	if got[CheckRawAddress] != 2 {
		t.Errorf("raw-address count = %d, want 2; findings: %v", got[CheckRawAddress], abuse)
	}
	// INSERT's last two operands (0, 5) are literal geometry; only the
	// width exceeds nothing — both are flagged regardless of magnitude.
	if got[CheckMagicField] != 2 {
		t.Errorf("magic-field count = %d, want 2; findings: %v", got[CheckMagicField], abuse)
	}
	// 0x12345 is a hardwired value outside every register block.
	if got[CheckMagicValue] != 1 {
		t.Errorf("magic-value count = %d, want 1; findings: %v", got[CheckMagicValue], abuse)
	}
	// The abuse is derivative-independent: merged findings carry no
	// variant tag.
	for _, f := range abuse {
		if f.Variant != "" {
			t.Errorf("expected variant-free merged finding, got %s", f)
		}
	}
}

// TestProvenanceExemptsExpansion: a test whose only use of global-layer
// names and raw constants comes through abstraction-layer expansion must
// be clean — the analyzer checks what the author wrote, not what the
// preprocessor produced.
func TestProvenanceExemptsExpansion(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_THROUGH_LAYER",
		Source: `;; clean: everything goes through Globals.inc names
.INCLUDE "Globals.inc"
test_main:
    LOAD d14, [REG_NVMC_PAGESEL]
    INSERT d14, d14, 3, PAGE_FIELD_START_POSITION, PAGE_FIELD_SIZE
    STORE [REG_NVMC_PAGESEL], d14
    CALL Base_Report_Pass
`,
	})
	r := Check(sys, NewOptions())
	for _, f := range findingsFor(r, "TEST_NVM_THROUGH_LAYER") {
		if f.Severity >= SevError {
			t.Errorf("false positive through expansion provenance: %s", f)
		}
	}
}

func TestLocalEquAllowance(t *testing.T) {
	cell := env.TestCell{
		ID: "TEST_NVM_EQU",
		Source: `.INCLUDE "Globals.inc"
LOCAL_TUNE .EQU 0x1234
test_main:
    LOAD d0, LOCAL_TUNE
    CALL Base_Report_Pass
`,
	}
	sys := injectTest(t, content.ModuleNVM, cell)
	r := Check(sys, NewOptions())
	if got := countByCheck(findingsFor(r, "TEST_NVM_EQU"))[CheckMagicValue]; got != 0 {
		t.Errorf("local .EQU literal flagged with AllowLocalEqu on: %d findings", got)
	}
	opts := NewOptions()
	opts.AllowLocalEqu = false
	r = Check(sys, opts)
	if got := countByCheck(findingsFor(r, "TEST_NVM_EQU"))[CheckMagicValue]; got != 1 {
		t.Errorf("strict mode magic-value count = %d, want 1", got)
	}
	// A raw register address is flagged even on an .EQU line: renaming a
	// hardwired address locally does not un-hardwire it.
	sys = injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_EQU_ADDR",
		Source: `.INCLUDE "Globals.inc"
MY_REG .EQU 0x80002014
test_main:
    CALL Base_Report_Pass
`,
	})
	r = Check(sys, NewOptions())
	if got := countByCheck(findingsFor(r, "TEST_NVM_EQU_ADDR"))[CheckRawAddress]; got != 1 {
		t.Errorf("raw address behind local .EQU: count = %d, want 1", got)
	}
}

func TestSuppressions(t *testing.T) {
	// Line-level: the trailing annotation silences exactly that line.
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SUPPRESS_LINE",
		Source: `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 0x80002014 ; lint:disable layer/raw-address
    LOAD d1, 0x80002018
    CALL Base_Report_Pass
`,
	})
	r := Check(sys, NewOptions())
	fs := findingsFor(r, "TEST_NVM_SUPPRESS_LINE")
	raw := countByCheck(fs)[CheckRawAddress]
	if raw != 1 {
		t.Errorf("line suppression: raw-address count = %d, want 1 (only the unannotated line)", raw)
	}
	for _, f := range fs {
		if f.Check == CheckRawAddress && f.Line != 4 {
			t.Errorf("surviving raw-address finding at line %d, want 4", f.Line)
		}
	}
	if r.Suppressed != 1 {
		t.Errorf("suppressed count = %d, want 1", r.Suppressed)
	}

	// File-level: a standalone annotation silences the whole file, and
	// "all" wildcards every check.
	sys = injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SUPPRESS_FILE",
		Source: `;; lint:disable all
.INCLUDE "registers.inc"
test_main:
    LOAD d0, 0x80002014
    CALL Base_Report_Pass
`,
	})
	r = Check(sys, NewOptions())
	if fs := findingsFor(r, "TEST_NVM_SUPPRESS_FILE"); len(fs) != 0 {
		t.Errorf("file-level 'all' suppression left findings: %v", fs)
	}
	if r.Suppressed == 0 {
		t.Error("file-level suppression recorded nothing suppressed")
	}
}

func TestDisableCheck(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_DISABLED",
		Source: `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 0x80002014
    CALL Base_Report_Pass
`,
	})
	opts := NewOptions()
	opts.Disable = map[string]bool{CheckRawAddress: true}
	r := Check(sys, opts)
	if got := countByCheck(findingsFor(r, "TEST_NVM_DISABLED"))[CheckRawAddress]; got != 0 {
		t.Errorf("disabled check still fired %d times", got)
	}
}

// TestVariantSubsetFindings: a test referencing a symbol that exists only
// on some derivatives produces per-variant findings — the global-ref
// fires where the name resolves, the build error where it does not.
func TestVariantSubsetFindings(t *testing.T) {
	sys := injectTest(t, content.ModuleUART, env.TestCell{
		ID: "TEST_UART_OLDNAME",
		Source: `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, UART_DR_OFF
    CALL Base_Report_Pass
`,
	})
	r := Check(sys, NewOptions())
	fs := findingsFor(r, "TEST_UART_OLDNAME")
	variants := map[string]map[string]bool{}
	for _, f := range fs {
		if variants[f.Check] == nil {
			variants[f.Check] = map[string]bool{}
		}
		variants[f.Check][f.Variant] = true
	}
	// UART_DR_OFF is a global name on A, B, C; on SEC it was renamed, so
	// the reference there is just an unresolved external — not a layer
	// violation. The finding must come back variant-tagged for exactly
	// the three derivatives that publish the name.
	gr := variants[CheckGlobalRef]
	if !gr["SC88-A"] || !gr["SC88-B"] || !gr["SC88-C"] || gr["SC88-SEC"] || gr[""] {
		t.Errorf("global-ref variants = %v, want exactly A, B, C", gr)
	}
}

func TestMergeVariants(t *testing.T) {
	derivs := derivative.Family() // A, B, C, SEC
	f := Finding{Check: CheckGlobalRef, Path: "p", Line: 3, Message: "m"}
	everywhere := [][]Finding{{f}, {f}, {f}, {f}}
	out := mergeVariants(derivs, everywhere)
	if len(out) != 1 || out[0].Variant != "" {
		t.Errorf("merge of universal finding = %v, want one variant-free finding", out)
	}
	subset := [][]Finding{{f}, nil, {f}, nil}
	out = mergeVariants(derivs, subset)
	if len(out) != 2 || out[0].Variant != derivs[0].Name || out[1].Variant != derivs[2].Name {
		t.Errorf("merge of subset finding = %v, want two variant-tagged findings", out)
	}
}

func TestReportDeterminism(t *testing.T) {
	s := content.PortedSystem()
	a, err := Check(s, NewOptions()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Check(s, NewOptions()).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two Check runs produced different JSON bytes")
	}
}

func TestSeverityAndChecksTable(t *testing.T) {
	if len(Checks()) != len(severityOf) {
		t.Errorf("Checks() lists %d ids, severity table has %d", len(Checks()), len(severityOf))
	}
	for _, id := range Checks() {
		if !strings.Contains(id, "/") {
			t.Errorf("check id %q is not namespaced", id)
		}
	}
	if severityOf[CheckGlobalRef] != SevError || severityOf[CheckUnreachable] != SevWarn ||
		severityOf[CheckVariantDiverge] != SevInfo {
		t.Error("severity table does not match the documented levels")
	}
}

// TestDeadAbstraction: an unused define and base function are reported;
// one reachable only through a live base function is not.
func TestDeadAbstraction(t *testing.T) {
	r := Check(content.PortedSystem(), NewOptions())
	byMsg := map[string]bool{}
	for _, f := range r.Findings {
		if f.Check == CheckDeadDefine || f.Check == CheckDeadBaseFunc {
			byMsg[f.Module+"/"+f.Check+"/"+msgName(f.Message)] = true
		}
	}
	// NVM's TIMEOUT_LOOPS is used only inside Base_Nvm_Wait_Ready, which
	// tests call: liveness must propagate through the base function.
	if byMsg["NVM/"+CheckDeadDefine+"/TIMEOUT_LOOPS"] {
		t.Error("TIMEOUT_LOOPS flagged dead in NVM despite a live base function using it")
	}
	// REG_MBOX_CHECKPT is genuinely unreachable in NVM (Base_Checkpoint is
	// never called).
	if !byMsg["NVM/"+CheckDeadDefine+"/REG_MBOX_CHECKPT"] {
		t.Error("REG_MBOX_CHECKPT not flagged dead in NVM")
	}
	if !byMsg["NVM/"+CheckDeadBaseFunc+"/Base_Checkpoint"] {
		t.Error("Base_Checkpoint not flagged dead in NVM")
	}
}

// msgName pulls the subject name out of a dead-abstraction message.
func msgName(msg string) string {
	fields := strings.Fields(msg)
	for i, f := range fields {
		if (f == "Define" || f == "Function") && i+1 < len(fields) {
			return fields[i+1]
		}
	}
	return ""
}
