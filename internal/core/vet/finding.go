// Package vet implements advm-vet, the multi-pass semantic analyzer for
// ADVM system verification environments. Where the original checker
// pattern-matched raw source text, vet works on the assembler's own
// artefacts — preprocessed token streams with expansion provenance,
// symbol tables, and assembled objects — so its passes can resolve
// symbols, see through macros and comments, and reason about control
// flow:
//
//	layer  discipline of the paper's Figure 2: tests must reach the
//	       global layer only through their abstraction layer
//	cfg    per-test control-flow: unreachable code, falling off the
//	       section, return-address clobbering, missing PASS/FAIL epilogue
//	port   symbols whose resolved values differ across the derivative ×
//	       platform matrix, and the static port-impact set of Figure 6/7
//	dead   Global Defines and Base Functions no test ever reaches
//	stack  whole-program worst-case stack depth per test against each
//	       derivative's budget, over the interprocedural call graph
//	flow   register def-use dataflow: may-uninitialised reads and dead
//	       stores, with macro expansion provenance
//	trace  requirements traceability: every test names a catalogued
//	       requirement, every catalogued requirement has a covering test
package vet

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Severity ranks a finding. Error-severity findings block a frozen
// release at the regression pre-flight gate.
type Severity uint8

// Severities, in increasing order.
const (
	SevInfo Severity = iota
	SevWarn
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warning"
	case SevError:
		return "error"
	}
	return "severity?"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	switch name {
	case "info":
		*s = SevInfo
	case "warning":
		*s = SevWarn
	case "error":
		*s = SevError
	default:
		return fmt.Errorf("vet: unknown severity %q", name)
	}
	return nil
}

// Check IDs. IDs are stable: suppression comments and CI baselines key
// on them.
const (
	CheckGlobalRef      = "layer/global-ref"        // test references a global-layer symbol
	CheckBypassInclude  = "layer/bypass-include"    // test includes a file other than Globals.inc
	CheckRawAddress     = "layer/raw-address"       // literal inside a peripheral register block
	CheckMagicValue     = "layer/magic-value"       // hardwired numeric literal
	CheckMagicField     = "layer/magic-field"       // literal bit-field geometry operand
	CheckUnreachable    = "cfg/unreachable"         // code no path reaches
	CheckFallThrough    = "cfg/fall-through"        // execution can run off the text section
	CheckCallImbalance  = "cfg/call-imbalance"      // RET after CALL without saving ra
	CheckNoEpilogue     = "cfg/no-epilogue"         // no reachable PASS/FAIL report
	CheckVariantDiverge = "port/variant-divergence" // symbol resolves differently per variant
	CheckDeadDefine     = "dead/define"             // Global Define no test reaches
	CheckDeadBaseFunc   = "dead/basefunc"           // Base Function no test reaches
	CheckBuildError     = "build/error"             // unit does not assemble
	// CheckSuperblockHostile flags an address-taken label whose target
	// sits mid-superblock: a computed jump (JI/CALLI) through it enters
	// the middle of a block the translation engine has already formed,
	// forcing a second, overlapping translation of the same code.
	CheckSuperblockHostile = "cfg/superblock-hostile"
)

// Whole-program check IDs (the interprocedural flow and traceability
// passes).
const (
	CheckStackRecursion       = "stack/recursion"            // call-graph cycle: unbounded recursion
	CheckStackUnbounded       = "stack/unbounded"            // loop grows the stack without bound
	CheckStackOverflow        = "stack/overflow"             // worst-case depth exceeds the derivative budget
	CheckLayerCall            = "layer/call-bypass"          // test-layer call edge into a global-layer function
	CheckUninitRead           = "flow/uninit-read"           // register read with no reaching write on some path
	CheckDeadStore            = "flow/dead-store"            // register write no path reads
	CheckNoRequirement        = "trace/no-requirement"       // test declares no REQ id
	CheckUnknownRequirement   = "trace/unknown-requirement"  // REQ id not in the catalogue
	CheckUncoveredRequirement = "trace/uncovered-requirement" // catalogued requirement with no covering test
)

// severityOf maps each check to its default severity.
var severityOf = map[string]Severity{
	CheckGlobalRef:         SevError,
	CheckBypassInclude:     SevError,
	CheckRawAddress:        SevError,
	CheckMagicValue:        SevError,
	CheckMagicField:        SevError,
	CheckUnreachable:       SevWarn,
	CheckFallThrough:       SevError,
	CheckCallImbalance:     SevWarn,
	CheckNoEpilogue:        SevError,
	CheckVariantDiverge:    SevInfo,
	CheckDeadDefine:        SevWarn,
	CheckDeadBaseFunc:      SevWarn,
	CheckBuildError:        SevError,
	CheckSuperblockHostile: SevWarn,

	CheckStackRecursion:       SevError,
	CheckStackUnbounded:       SevError,
	CheckStackOverflow:        SevError,
	CheckLayerCall:            SevError,
	CheckUninitRead:           SevError,
	CheckDeadStore:            SevWarn,
	CheckNoRequirement:        SevError,
	CheckUnknownRequirement:   SevError,
	CheckUncoveredRequirement: SevError,
}

// Checks lists every check ID in sorted order.
func Checks() []string {
	out := make([]string, 0, len(severityOf))
	for id := range severityOf {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Finding is one analyzer result.
type Finding struct {
	// Check is the stable check ID, e.g. "layer/global-ref".
	Check string `json:"check"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Path and Line locate the finding in the materialised tree, when it
	// has a source location.
	Path string `json:"path,omitempty"`
	Line int    `json:"line,omitempty"`
	// Module and Test name the environment and test cell, when the
	// finding belongs to one.
	Module string `json:"module,omitempty"`
	Test   string `json:"test,omitempty"`
	// Variant names the derivative the finding is specific to; empty when
	// it holds for every analysed derivative.
	Variant string `json:"variant,omitempty"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

func (f Finding) String() string {
	var b strings.Builder
	if f.Path != "" {
		fmt.Fprintf(&b, "%s:", f.Path)
		if f.Line > 0 {
			fmt.Fprintf(&b, "%d:", f.Line)
		}
		b.WriteString(" ")
	}
	fmt.Fprintf(&b, "%s: [%s] %s", f.Severity, f.Check, f.Message)
	if f.Variant != "" {
		fmt.Fprintf(&b, " (on %s)", f.Variant)
	}
	return b.String()
}

// sortKey orders findings deterministically.
func (f Finding) sortKey() string {
	return fmt.Sprintf("%s\x00%08d\x00%s\x00%s\x00%s\x00%s\x00%s",
		f.Path, f.Line, f.Check, f.Module, f.Test, f.Variant, f.Message)
}

// mergeKey identifies a finding modulo the variant, for cross-derivative
// merging.
func (f Finding) mergeKey() string {
	return fmt.Sprintf("%s\x00%d\x00%s\x00%s\x00%s\x00%s",
		f.Path, f.Line, f.Check, f.Module, f.Test, f.Message)
}

// StackBound is one row of the worst-case stack-depth table: a test's
// bound on one derivative, against that derivative's budget.
type StackBound struct {
	Module     string `json:"module"`
	Test       string `json:"test"`
	Derivative string `json:"derivative"`
	// DepthBytes is the worst-case stack depth; -1 means unbounded
	// (recursion or a stack-growing loop).
	DepthBytes  int `json:"depth_bytes"`
	BudgetBytes int `json:"budget_bytes"`
}

// Report is the analyzer output for one system environment.
type Report struct {
	// System is the analysed system's name.
	System string `json:"system"`
	// Derivatives lists the analysed derivative names.
	Derivatives []string `json:"derivatives"`
	// Findings, in deterministic order.
	Findings []Finding `json:"findings"`
	// Stack is the whole-program stack-depth bound table, one row per
	// test × derivative, in (module, test, derivative) order.
	Stack []StackBound `json:"stack,omitempty"`
	// Suppressed counts findings removed by lint:disable annotations.
	Suppressed int `json:"suppressed,omitempty"`
}

// Sort puts the findings in their canonical order.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		return r.Findings[i].sortKey() < r.Findings[j].sortKey()
	})
}

// Count returns the number of findings at a severity.
func (r *Report) Count(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == sev {
			n++
		}
	}
	return n
}

// Errors returns the number of error-severity findings.
func (r *Report) Errors() int { return r.Count(SevError) }

// ByCheck returns the findings with a given check ID.
func (r *Report) ByCheck(id string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Check == id {
			out = append(out, f)
		}
	}
	return out
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%d error(s), %d warning(s), %d info\n",
		r.Count(SevError), r.Count(SevWarn), r.Count(SevInfo))
	return b.String()
}
