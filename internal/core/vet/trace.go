package vet

// trace.go is the requirements-traceability pass. A test cell declares
// the requirements it verifies with `; REQ: <id>` annotation lines —
// ordinary comments to the assembler, first-class annotations to vet.
// When the system carries a requirements catalogue, the pass errors on
// tests with no requirement, on annotations naming requirements the
// catalogue does not know, and on catalogued requirements no test
// covers. The resulting matrix is the traceability half of the
// certification bundle.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/sysenv"
)

// reqMarker introduces a requirement annotation inside a comment:
// `; REQ: REQ-NVM-001` (several ids may share a line, comma-separated).
const reqMarker = "REQ:"

// requirementRefs scans a test source for `; REQ:` annotations and
// returns the referenced ids with the line each first appears on.
func requirementRefs(src string) (ids []string, lines map[string]int) {
	lines = make(map[string]int)
	for num, line := range strings.Split(src, "\n") {
		idx := strings.Index(line, ";")
		if idx < 0 {
			continue
		}
		comment := strings.TrimSpace(line[idx+1:])
		comment = strings.TrimLeft(comment, "; ")
		if !strings.HasPrefix(comment, reqMarker) {
			continue
		}
		for _, id := range strings.Split(comment[len(reqMarker):], ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, seen := lines[id]; !seen {
				lines[id] = num + 1
				ids = append(ids, id)
			}
		}
	}
	return ids, lines
}

// ReqCoverage is one catalogue row of the traceability matrix: a
// requirement and the tests that verify it.
type ReqCoverage struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Tests []string `json:"tests,omitempty"` // "module/TEST_ID"
}

// TraceRow is one test row of the traceability matrix.
type TraceRow struct {
	Module string   `json:"module"`
	Test   string   `json:"test"`
	Reqs   []string `json:"reqs,omitempty"`
}

// TraceMatrix is the two-way requirements-to-tests mapping.
type TraceMatrix struct {
	Requirements []ReqCoverage `json:"requirements"`
	Tests        []TraceRow    `json:"tests"`
}

// Traceability builds the system's traceability matrix from the
// catalogue and the `; REQ:` annotations of every test cell. The matrix
// is deterministic: requirements in catalogue order, tests sorted by
// (module, id), covering tests sorted.
func Traceability(s *sysenv.System) TraceMatrix {
	var m TraceMatrix
	covered := make(map[string][]string)
	for _, e := range s.Envs() {
		for _, t := range e.Tests() {
			ids, _ := requirementRefs(t.Source)
			sort.Strings(ids)
			m.Tests = append(m.Tests, TraceRow{Module: e.Module, Test: t.ID, Reqs: ids})
			for _, id := range ids {
				covered[id] = append(covered[id], e.Module+"/"+t.ID)
			}
		}
	}
	sort.Slice(m.Tests, func(i, j int) bool {
		if m.Tests[i].Module != m.Tests[j].Module {
			return m.Tests[i].Module < m.Tests[j].Module
		}
		return m.Tests[i].Test < m.Tests[j].Test
	})
	for _, r := range s.Requirements() {
		tests := covered[r.ID]
		sort.Strings(tests)
		m.Requirements = append(m.Requirements, ReqCoverage{ID: r.ID, Title: r.Title, Tests: tests})
	}
	return m
}

// traceFindings enforces traceability over a system that carries a
// requirements catalogue. Systems without a catalogue (scratch systems,
// the unported baseline) are exempt: traceability is a property of a
// certified suite, not of every assembly of tests.
func traceFindings(s *sysenv.System, opts Options) []Finding {
	reqs := s.Requirements()
	if len(reqs) == 0 {
		return nil
	}
	known := make(map[string]bool, len(reqs))
	for _, r := range reqs {
		known[r.ID] = true
	}
	var out []Finding
	covered := make(map[string]bool)
	for _, e := range s.Envs() {
		for _, t := range e.Tests() {
			path := e.TestSourcePath(t.ID)
			base := Finding{Path: path, Module: e.Module, Test: t.ID}
			ids, lines := requirementRefs(t.Source)
			if len(ids) == 0 && opts.enabled(CheckNoRequirement) {
				f := base
				f.Message = "test declares no requirement: add a `; REQ: <id>` annotation naming what it verifies"
				out = append(out, finding(CheckNoRequirement, f))
			}
			for _, id := range ids {
				if !known[id] {
					if opts.enabled(CheckUnknownRequirement) {
						f := base
						f.Line = lines[id]
						f.Message = fmt.Sprintf("requirement %s is not in the catalogue: the annotation is dangling", id)
						out = append(out, finding(CheckUnknownRequirement, f))
					}
					continue
				}
				covered[id] = true
			}
		}
	}
	if opts.enabled(CheckUncoveredRequirement) {
		for _, r := range reqs {
			if covered[r.ID] {
				continue
			}
			f := Finding{
				Message: fmt.Sprintf("requirement %s (%s) has no covering test: the suite does not demonstrate it",
					r.ID, r.Title),
			}
			out = append(out, finding(CheckUncoveredRequirement, f))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sortKey() < out[j].sortKey() })
	return out
}
