package vet

import (
	"sort"
	"strings"

	"repro/internal/asm"
	"repro/internal/core/derivative"
	"repro/internal/core/sysenv"
	"repro/internal/platform"
)

// Options tunes the analyzer.
type Options struct {
	// MagicThreshold: numeric literals with absolute value above this are
	// flagged as hardwired. Small structural constants (loop steps, 0/1
	// flags) pass. Default 15.
	MagicThreshold int64
	// AllowLocalEqu: numeric literals on test-local .EQU lines are
	// allowed (the paper permits local placeholder control in tests) —
	// unless the value lands inside a peripheral register block, which is
	// a raw address however it is spelled. Default true via NewOptions.
	AllowLocalEqu bool
	// Derivatives to analyse across. Defaults to the full family.
	Derivatives []*derivative.Derivative
	// Kinds are the platform kinds the portability pass spans. Layer and
	// CFG analysis run at the first kind (platform macros only select
	// values inside the abstraction layer). Defaults to all kinds.
	Kinds []platform.Kind
	// Disable globally turns off check IDs ("all" disables everything —
	// useful only for narrowing a run to one pass).
	Disable map[string]bool
}

// NewOptions returns the default options.
func NewOptions() Options {
	return Options{MagicThreshold: 15, AllowLocalEqu: true}
}

func (o *Options) normalise() {
	if o.MagicThreshold == 0 {
		o.MagicThreshold = 15
	}
	if len(o.Derivatives) == 0 {
		o.Derivatives = derivative.Family()
	}
	if len(o.Kinds) == 0 {
		// The full kind list, independent of which platform
		// implementations are linked in: the analyzer only needs the
		// kinds' preprocessor macros, never an executable platform.
		o.Kinds = []platform.Kind{
			platform.KindGolden, platform.KindRTL, platform.KindGate,
			platform.KindEmulator, platform.KindBondout, platform.KindSilicon,
		}
	}
}

func (o *Options) enabled(check string) bool {
	return !o.Disable[check] && !o.Disable["all"]
}

// Check runs every analyzer pass over a system environment and returns
// the report. Findings are deterministic: same system, same options,
// same bytes out.
func Check(s *sysenv.System, opts Options) *Report {
	opts.normalise()
	r := &Report{System: s.Name}
	for _, d := range opts.Derivatives {
		r.Derivatives = append(r.Derivatives, d.Name)
	}

	// Layer + CFG + whole-program flow run once per derivative; findings
	// present on every derivative merge into one variant-free finding.
	perDeriv := make([][]Finding, len(opts.Derivatives))
	for i, d := range opts.Derivatives {
		perDeriv[i] = append(layerFindings(s, d, opts.Kinds[0], opts),
			cfgFindings(s, d, opts.Kinds[0], opts)...)
		flow, bounds := flowFindings(s, d, opts.Kinds[0], opts)
		perDeriv[i] = append(perDeriv[i], flow...)
		r.Stack = append(r.Stack, bounds...)
	}
	r.Findings = append(r.Findings, mergeVariants(opts.Derivatives, perDeriv)...)

	r.Findings = append(r.Findings, portFindings(s, opts)...)
	r.Findings = append(r.Findings, deadFindings(s, opts)...)
	r.Findings = append(r.Findings, traceFindings(s, opts)...)

	r.Findings, r.Suppressed = applySuppressions(s, r.Findings)
	sort.Slice(r.Stack, func(i, j int) bool {
		a, b := r.Stack[i], r.Stack[j]
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		if a.Test != b.Test {
			return a.Test < b.Test
		}
		return a.Derivative < b.Derivative
	})
	r.Sort()
	return r
}

// finding builds a Finding with the check's default severity.
func finding(check string, f Finding) Finding {
	f.Check = check
	f.Severity = severityOf[check]
	return f
}

// mergeVariants folds per-derivative finding lists: a finding reported
// for every derivative is emitted once without a variant; one reported
// for a strict subset is emitted per derivative with Variant set.
func mergeVariants(derivs []*derivative.Derivative, perDeriv [][]Finding) []Finding {
	type slot struct {
		f     Finding
		on    []int // derivative indexes, in order
		first int   // insertion order of first sighting
	}
	index := make(map[string]*slot)
	var order []*slot
	for di, findings := range perDeriv {
		for _, f := range findings {
			k := f.mergeKey()
			sl, ok := index[k]
			if !ok {
				sl = &slot{f: f, first: len(order)}
				index[k] = sl
				order = append(order, sl)
			}
			if len(sl.on) == 0 || sl.on[len(sl.on)-1] != di {
				sl.on = append(sl.on, di)
			}
		}
	}
	var out []Finding
	for _, sl := range order {
		if len(sl.on) == len(derivs) {
			f := sl.f
			f.Variant = ""
			out = append(out, f)
			continue
		}
		for _, di := range sl.on {
			f := sl.f
			f.Variant = derivs[di].Name
			out = append(out, f)
		}
	}
	return out
}

// ---- suppressions ----

// suppression is one `; lint:disable <check>[,<check>...]` annotation.
// On a code line it applies to that line; on a standalone comment line
// it applies to the whole file. The check list accepts "all".
type suppression struct {
	checks map[string]bool
	line   int // 0 = whole file
}

func (sp suppression) matches(f Finding) bool {
	if sp.line != 0 && sp.line != f.Line {
		return false
	}
	return sp.checks["all"] || sp.checks[f.Check]
}

const disableMarker = "lint:disable"

// scanSuppressions extracts the annotations from one raw source.
func scanSuppressions(src string) []suppression {
	var out []suppression
	for num, text := range strings.Split(src, "\n") {
		ci := strings.Index(text, ";")
		if ci < 0 {
			continue
		}
		comment := text[ci:]
		mi := strings.Index(comment, disableMarker)
		if mi < 0 {
			continue
		}
		list := strings.TrimSpace(comment[mi+len(disableMarker):])
		checks := make(map[string]bool)
		for _, tok := range strings.FieldsFunc(list, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		}) {
			checks[tok] = true
		}
		if len(checks) == 0 {
			continue
		}
		sp := suppression{checks: checks}
		if strings.TrimSpace(text[:ci]) != "" {
			sp.line = num + 1 // trailing comment: this line only
		}
		out = append(out, sp)
	}
	return out
}

// applySuppressions removes findings matched by test-source annotations
// and returns the survivors plus the suppressed count.
func applySuppressions(s *sysenv.System, findings []Finding) ([]Finding, int) {
	byPath := make(map[string][]suppression)
	for _, e := range s.Envs() {
		for _, t := range e.Tests() {
			if sps := scanSuppressions(t.Source); len(sps) > 0 {
				byPath[e.TestSourcePath(t.ID)] = sps
			}
		}
	}
	if len(byPath) == 0 {
		return findings, 0
	}
	out := findings[:0]
	suppressed := 0
	for _, f := range findings {
		drop := false
		for _, sp := range byPath[f.Path] {
			if sp.matches(f) {
				drop = true
				break
			}
		}
		if drop {
			suppressed++
		} else {
			out = append(out, f)
		}
	}
	return out, suppressed
}

// expand preprocesses one test source the way the build pipeline would
// for a derivative/platform pair.
func expand(tree map[string]string, module, path, src string, d *derivative.Derivative, k platform.Kind) ([]asm.Line, []error) {
	return asm.Expand(path, src, asm.Options{
		Resolver: sysenv.NewResolver(tree, module),
		Defines:  sysenv.BuildDefines(d, k),
	})
}
