package vet

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core/derivative"
	"repro/internal/core/sysenv"
	"repro/internal/platform"
)

// layerFindings is the layer-discipline pass (the paper's Figure 2): it
// preprocesses every test cell with the real assembler front end and
// checks the tokens the test author actually wrote — expansion
// provenance separates them from text injected by Globals.inc defines
// or macros, so abstraction-layer machinery can never trip the checks.
func layerFindings(s *sysenv.System, d *derivative.Derivative, k platform.Kind, opts Options) []Finding {
	tree := s.Materialise(d)
	globals := globalNames(d)
	blocks := peripheralBlocks(d)
	var out []Finding
	for _, e := range s.Envs() {
		for _, t := range e.Tests() {
			path := e.TestSourcePath(t.ID)
			base := Finding{Path: path, Module: e.Module, Test: t.ID}
			out = append(out, checkIncludes(path, t.Source, base, opts)...)
			lines, errs := expand(tree, e.Module, path, t.Source, d, k)
			for _, err := range errs {
				if !opts.enabled(CheckBuildError) {
					break
				}
				f := base
				f.Message = "test does not preprocess: " + err.Error()
				out = append(out, finding(CheckBuildError, f))
			}
			out = append(out, checkLines(path, lines, globals, blocks, base, opts)...)
		}
	}
	return out
}

// checkIncludes scans the RAW source for .INCLUDE lines: the
// preprocessor consumes them before Expand returns, so the bypass check
// must look at the text the author wrote. Only Globals.inc — the
// abstraction layer's single entry point — is legitimate from the test
// layer.
func checkIncludes(path, src string, base Finding, opts Options) []Finding {
	if !opts.enabled(CheckBypassInclude) {
		return nil
	}
	var out []Finding
	for num, text := range strings.Split(src, "\n") {
		toks, err := asm.LexLine(path, num+1, text)
		if err != nil || len(toks) == 0 {
			continue
		}
		if toks[0].Kind != asm.TokDirective || toks[0].Text != "INCLUDE" {
			continue
		}
		if len(toks) == 2 && toks[1].Kind == asm.TokString && toks[1].Text != "Globals.inc" {
			f := base
			f.Line = num + 1
			f.Message = fmt.Sprintf("test includes %q directly; only Globals.inc is permitted", toks[1].Text)
			out = append(out, finding(CheckBypassInclude, f))
		}
	}
	return out
}

// checkLines inspects the preprocessed lines of one test cell. Only
// tokens whose Origin is the test file itself are the author's — tokens
// substituted in from the abstraction layer are exempt by construction.
func checkLines(path string, lines []asm.Line, globals map[string]bool, blocks []addrBlock, base Finding, opts Options) []Finding {
	var out []Finding
	for _, ln := range lines {
		if ln.File != path {
			continue // line physically lives in an included file
		}
		isEqu := len(ln.Toks) >= 2 && ln.Toks[0].Kind == asm.TokIdent &&
			ln.Toks[1].Kind == asm.TokDirective && ln.Toks[1].Text == "EQU"
		geometry := geometryOperands(ln.Toks)
		for i, tok := range ln.Toks {
			if tok.Origin() != path {
				continue
			}
			switch tok.Kind {
			case asm.TokIdent:
				if globals[tok.Text] && opts.enabled(CheckGlobalRef) {
					f := base
					f.Line = ln.Num
					f.Message = fmt.Sprintf("global-layer symbol %q referenced directly; re-map it in Globals.inc or wrap it in Base_Functions", tok.Text)
					out = append(out, finding(CheckGlobalRef, f))
				}
			case asm.TokNumber:
				if blk := findBlock(blocks, tok.Val); blk != nil && opts.enabled(CheckRawAddress) {
					f := base
					f.Line = ln.Num
					f.Message = fmt.Sprintf("raw register address %s lands in the %s block [0x%08X..0x%08X); use the re-mapped name", tok.Text, blk.name, blk.lo, blk.hi)
					out = append(out, finding(CheckRawAddress, f))
					continue
				}
				if geometry[i] && opts.enabled(CheckMagicField) {
					f := base
					f.Line = ln.Num
					f.Message = fmt.Sprintf("literal bit-field geometry %s; name the position/width in Globals.inc so a derivative change is a single-point edit", tok.Text)
					out = append(out, finding(CheckMagicField, f))
					continue
				}
				if isEqu && opts.AllowLocalEqu {
					continue
				}
				if tok.Val > opts.MagicThreshold || tok.Val < -opts.MagicThreshold {
					if opts.enabled(CheckMagicValue) {
						f := base
						f.Line = ln.Num
						f.Message = fmt.Sprintf("hardwired value %s; give it a name in Globals.inc", tok.Text)
						out = append(out, finding(CheckMagicValue, f))
					}
				}
			}
		}
	}
	return out
}

// bitfieldMnemonics are the instructions whose last two operands are bit
// position and field width — the Figure 6 geometry that derivative
// changes move, so it must never be written as a literal in a test.
var bitfieldMnemonics = map[string]bool{
	"INSERT": true, "INSERTX": true,
	"EXTRACT": true, "EXTRU": true, "EXTRS": true,
}

// geometryOperands returns the token indexes that are pos/width operands
// of a bitfield instruction (empty map otherwise). The mnemonic may
// follow a leading "label:" pair.
func geometryOperands(toks []asm.Token) map[int]bool {
	i := 0
	for i+1 < len(toks) && toks[i].Kind == asm.TokIdent && toks[i+1].IsPunct(":") {
		i += 2
	}
	if i >= len(toks) || toks[i].Kind != asm.TokIdent || !bitfieldMnemonics[strings.ToUpper(toks[i].Text)] {
		return nil
	}
	// Split the operand field on top-level commas; the last two operand
	// groups are pos and width.
	var groups [][]int
	var cur []int
	depth := 0
	for j := i + 1; j < len(toks); j++ {
		t := toks[j]
		if t.Kind == asm.TokPunct {
			switch t.Text {
			case "(", "[":
				depth++
			case ")", "]":
				depth--
			case ",":
				if depth == 0 {
					groups = append(groups, cur)
					cur = nil
					continue
				}
			}
		}
		cur = append(cur, j)
	}
	groups = append(groups, cur)
	if len(groups) < 4 { // rd, rs, ..., pos, width at minimum
		return nil
	}
	geo := make(map[int]bool)
	for _, g := range groups[len(groups)-2:] {
		for _, j := range g {
			geo[j] = true
		}
	}
	return geo
}

// ---- global names and peripheral blocks ----

// globalNames extracts the global-layer symbol names a test must never
// reference directly: every .EQU name in the register definitions and
// every label in the global assembler sources.
func globalNames(d *derivative.Derivative) map[string]bool {
	names := make(map[string]bool)
	for path, src := range sysenv.GlobalLayer(d) {
		isInc := strings.HasSuffix(path, ".inc")
		for num, text := range strings.Split(src, "\n") {
			toks, err := asm.LexLine(path, num+1, text)
			if err != nil || len(toks) == 0 {
				continue
			}
			if len(toks) >= 2 && toks[0].Kind == asm.TokIdent &&
				toks[1].Kind == asm.TokDirective && toks[1].Text == "EQU" {
				names[toks[0].Text] = true
				continue
			}
			if !isInc && len(toks) >= 2 && toks[0].Kind == asm.TokIdent && toks[1].IsPunct(":") {
				names[toks[0].Text] = true
			}
		}
	}
	// The entry symbol is startup plumbing, not a service a test could
	// meaningfully reach.
	delete(names, "_start")
	return names
}

// addrBlock is one peripheral register block.
type addrBlock struct {
	name   string
	lo, hi uint32 // [lo, hi)
}

// blockSpan is each peripheral block's address-decode size.
const blockSpan = 0x1000

// peripheralBlocks lists the derivative's memory-mapped register blocks.
// A literal inside any of them is a register address whatever it is
// called locally.
func peripheralBlocks(d *derivative.Derivative) []addrBlock {
	hw := d.HW
	bases := []struct {
		name string
		base uint32
	}{
		{"mailbox", hw.MboxBase},
		{"UART", hw.UartBase},
		{"NVM controller", hw.NvmcBase},
		{"timer", hw.TimerBase},
		{"interrupt controller", hw.IntcBase},
		{"watchdog", hw.WdtBase},
		{"GPIO", hw.GpioBase},
		{"MPU", hw.MpuBase},
	}
	out := make([]addrBlock, len(bases))
	for i, b := range bases {
		out[i] = addrBlock{name: b.name, lo: b.base, hi: b.base + blockSpan}
	}
	return out
}

func findBlock(blocks []addrBlock, v int64) *addrBlock {
	if v < 0 || v > 0xffffffff {
		return nil
	}
	u := uint32(v)
	for i := range blocks {
		if u >= blocks[i].lo && u < blocks[i].hi {
			return &blocks[i]
		}
	}
	return nil
}
