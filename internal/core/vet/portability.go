package vet

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/derivative"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
	"repro/internal/obj"
	"repro/internal/platform"
)

// probeSource is the minimal unit whose symbol table is exactly the
// abstraction layer's resolved define set.
const probeSource = ".INCLUDE \"Globals.inc\"\n"

// portFindings is the portability pass: it assembles a probe of each
// environment's Globals.inc under every derivative × platform
// combination and reports, per module, the symbols that resolve to
// different values across the matrix. These are precisely the paper's
// Figure 6 single points of change — the surface a port touches.
func portFindings(s *sysenv.System, opts Options) []Finding {
	if !opts.enabled(CheckVariantDiverge) {
		return nil
	}
	type variant struct {
		d *derivative.Derivative
		k platform.Kind
	}
	var variants []variant
	trees := make(map[string]map[string]string, len(opts.Derivatives))
	for _, d := range opts.Derivatives {
		trees[d.Name] = s.Materialise(d)
		for _, k := range opts.Kinds {
			variants = append(variants, variant{d, k})
		}
	}
	var out []Finding
	for _, e := range s.Envs() {
		// values[name][variant index] = resolved value (Abs symbols only).
		values := make(map[string]map[int]int64)
		for vi, v := range variants {
			o, err := assembleUnit(trees[v.d.Name], e.Module, "probe.asm", probeSource, v.d, v.k)
			if err != nil {
				continue // build errors surface in the layer/cfg passes
			}
			for _, sym := range o.Symbols {
				if !sym.Abs {
					continue
				}
				if values[sym.Name] == nil {
					values[sym.Name] = make(map[int]int64)
				}
				values[sym.Name][vi] = sym.Value
			}
		}
		names := make([]string, 0, len(values))
		for n := range values {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, name := range names {
			byVariant := values[name]
			distinct := make(map[int64]bool)
			for _, v := range byVariant {
				distinct[v] = true
			}
			if len(distinct) < 2 {
				continue
			}
			derivOf := func(vi int) string { return variants[vi].d.Name }
			kindOf := func(vi int) string { return variants[vi].k.String() }
			f := Finding{
				Path:   e.Module + "/" + env.GlobalsFile,
				Module: e.Module,
				Message: fmt.Sprintf("symbol %s resolves to %d distinct values across the variant matrix: %s",
					name, len(distinct), describeValues(len(variants), byVariant, derivOf, kindOf)),
			}
			out = append(out, finding(CheckVariantDiverge, f))
		}
	}
	return out
}

// describeValues renders "0x5 on SC88-A,SC88-C; 0x6 on SC88-B" grouping
// variants by value. When the value only depends on one matrix
// dimension, the other dimension is collapsed out of the labels — a
// platform-controlled timeout reads "on gate", not sixteen
// derivative/kind pairs.
func describeValues(n int, byVariant map[int]int64, derivOf, kindOf func(int) string) string {
	uniformAcross := func(groupOf func(int) string) (map[string]int64, []string, bool) {
		vals := make(map[string]int64)
		var order []string
		for vi := 0; vi < n; vi++ {
			v, ok := byVariant[vi]
			if !ok {
				continue
			}
			g := groupOf(vi)
			if prev, seen := vals[g]; seen {
				if prev != v {
					return nil, nil, false
				}
				continue
			}
			vals[g] = v
			order = append(order, g)
		}
		return vals, order, true
	}
	labelOf := func(vi int) string { return derivOf(vi) + "/" + kindOf(vi) }
	vals, order, ok := uniformAcross(derivOf)
	if !ok {
		vals, order, ok = uniformAcross(kindOf)
	}
	if !ok {
		vals, order, _ = uniformAcross(labelOf)
	}
	type group struct {
		val    int64
		labels []string
	}
	var groups []*group
	byVal := make(map[int64]*group)
	for _, label := range order {
		v := vals[label]
		g, seen := byVal[v]
		if !seen {
			g = &group{val: v}
			byVal[v] = g
			groups = append(groups, g)
		}
		g.labels = append(g.labels, label)
	}
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = fmt.Sprintf("0x%X on %s", g.val, strings.Join(g.labels, ","))
	}
	return strings.Join(parts, "; ")
}

// ---- static port impact ----

// Impact records that porting from one derivative to another changes
// the build of one test cell, and which of its link units changed.
type Impact struct {
	Module string   `json:"module"`
	Test   string   `json:"test"`
	Units  []string `json:"units"`
}

// PortImpact statically computes which test cells a derivative port
// touches: for each cell it assembles the five link units (the three
// global-layer objects, the abstraction layer, and the test itself)
// under both derivatives and deep-compares the objects. Because the
// family shares one ROM/RAM layout, two equal object sets link to equal
// images — so this static set equals the set of cells whose built
// images differ, without linking or running anything (the Figure 6/7
// claim made checkable).
func PortImpact(s *sysenv.System, from, to *derivative.Derivative, k platform.Kind) ([]Impact, error) {
	type side struct {
		tree map[string]string
		d    *derivative.Derivative
	}
	sides := [2]side{
		{s.Materialise(from), from},
		{s.Materialise(to), to},
	}
	// The global-layer units are shared by every cell: assemble once per
	// side and compare once.
	globalUnits := []string{sysenv.Crt0File, sysenv.TrapHandlersFile, sysenv.EmbeddedSWFile}
	globalChanged := make(map[string]bool)
	for _, name := range globalUnits {
		path := sysenv.GlobalDir + "/" + name
		var objs [2]*obj.Object
		for i, sd := range sides {
			o, err := assembleUnit(sd.tree, "", path, sd.tree[path], sd.d, k)
			if err != nil {
				return nil, fmt.Errorf("vet: %s on %s: %w", path, sd.d.Name, err)
			}
			objs[i] = o
		}
		if !objectsEqual(objs[0], objs[1]) {
			globalChanged[name] = true
		}
	}
	var out []Impact
	for _, e := range s.Envs() {
		moduleUnits := map[string]string{
			"Base_Functions.asm": e.Module + "/" + env.BaseFuncsFile,
		}
		moduleChanged := make(map[string]bool)
		for name, path := range moduleUnits {
			var objs [2]*obj.Object
			for i, sd := range sides {
				o, err := assembleUnit(sd.tree, e.Module, path, sd.tree[path], sd.d, k)
				if err != nil {
					return nil, fmt.Errorf("vet: %s on %s: %w", path, sd.d.Name, err)
				}
				objs[i] = o
			}
			if !objectsEqual(objs[0], objs[1]) {
				moduleChanged[name] = true
			}
		}
		for _, t := range e.Tests() {
			path := e.TestSourcePath(t.ID)
			var units []string
			for _, name := range globalUnits {
				if globalChanged[name] {
					units = append(units, name)
				}
			}
			for name := range moduleChanged {
				units = append(units, name)
			}
			var objs [2]*obj.Object
			for i, sd := range sides {
				o, err := assembleUnit(sd.tree, e.Module, path, t.Source, sd.d, k)
				if err != nil {
					return nil, fmt.Errorf("vet: %s on %s: %w", path, sd.d.Name, err)
				}
				objs[i] = o
			}
			if !objectsEqual(objs[0], objs[1]) {
				units = append(units, "test.asm")
			}
			if len(units) > 0 {
				sort.Strings(units)
				out = append(out, Impact{Module: e.Module, Test: t.ID, Units: units})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Module != out[j].Module {
			return out[i].Module < out[j].Module
		}
		return out[i].Test < out[j].Test
	})
	return out, nil
}

// objectsEqual deep-compares two relocatable objects.
func objectsEqual(a, b *obj.Object) bool {
	if string(a.Text) != string(b.Text) || string(a.Data) != string(b.Data) || a.BssSize != b.BssSize {
		return false
	}
	if len(a.Symbols) != len(b.Symbols) || len(a.Relocs) != len(b.Relocs) {
		return false
	}
	for i := range a.Symbols {
		if a.Symbols[i] != b.Symbols[i] {
			return false
		}
	}
	for i := range a.Relocs {
		if a.Relocs[i] != b.Relocs[i] {
			return false
		}
	}
	return true
}
