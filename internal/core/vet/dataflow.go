package vet

// dataflow.go is the register def-use pass of the whole-program flow
// analysis: a forward may-be-uninitialised analysis and a backward
// liveness analysis over one test unit's CFG. Both analyses walk the
// assembled object, so macro expansions are analysed exactly as built,
// and findings report the expansion origin when the offending
// instruction was not written in the test source itself.
//
// Code reachable only through address-taken labels (trap/interrupt
// handlers installed into vector tables) executes asynchronously, so the
// analyses treat it as a boundary rather than a path: registers a
// handler writes count as initialised at test_main (the handler may run
// first or in a wait loop), and registers a handler reads are never
// reported as dead stores in the synchronous flow.

import (
	"fmt"

	"repro/internal/isa"
)

// regSet is a bitset over the 32 architectural registers.
type regSet uint32

func (s regSet) has(r isa.Reg) bool  { return s&(1<<uint(r)) != 0 }
func (s *regSet) add(r isa.Reg)      { *s |= 1 << uint(r) }
func (s *regSet) del(r isa.Reg)      { *s &^= 1 << uint(r) }
func (s *regSet) union(o regSet)     { *s |= o }

const allRegs = regSet(0xFFFFFFFF)

// regUses returns the registers an instruction reads.
func regUses(in isa.Inst) regSet {
	var s regSet
	switch in.Op {
	case isa.OpMov, isa.OpMovA, isa.OpMovDA, isa.OpMovAD, isa.OpLeaO,
		isa.OpLdW, isa.OpLdH, isa.OpLdHU, isa.OpLdB, isa.OpLdBU, isa.OpLdA,
		isa.OpAddI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpSarI, isa.OpMulI,
		isa.OpInsertX, isa.OpExtractU, isa.OpExtractS:
		s.add(in.Rs)
	case isa.OpStW, isa.OpStH, isa.OpStB, isa.OpStA:
		s.add(in.Rs)
		s.add(in.Rd)
	case isa.OpStWX, isa.OpMtcr:
		s.add(in.Rd)
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpCmp, isa.OpInsert:
		s.add(in.Rs)
		s.add(in.Rt)
	case isa.OpCmpI:
		s.add(in.Rs)
	case isa.OpJI, isa.OpCallI:
		s.add(in.Rs)
	case isa.OpRet:
		s.add(isa.RA)
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge, isa.OpBltU, isa.OpBgeU:
		s.add(in.Rd)
		s.add(in.Rs)
	}
	return s
}

// regDefs returns the registers an instruction writes.
func regDefs(in isa.Inst) regSet {
	var s regSet
	switch in.Op {
	case isa.OpMovI, isa.OpMovHI, isa.OpMovX, isa.OpMov, isa.OpMovA,
		isa.OpMovDA, isa.OpMovAD, isa.OpLea, isa.OpLeaO,
		isa.OpLdW, isa.OpLdH, isa.OpLdHU, isa.OpLdB, isa.OpLdBU,
		isa.OpLdWX, isa.OpLdA,
		isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAddI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpSarI, isa.OpMulI,
		isa.OpInsert, isa.OpInsertX, isa.OpExtractU, isa.OpExtractS,
		isa.OpMfcr:
		s.add(in.Rd)
	case isa.OpCall, isa.OpCallI:
		s.add(isa.RA)
	}
	return s
}

// asyncRegs computes the registers read and written by code reachable
// through address-taken labels — the asynchronous (handler) portion of
// the unit — plus the set of instruction offsets that code spans.
func (u *cfgUnit) asyncRegs(noreturn map[string]bool) (reads, writes regSet, offs map[uint32]bool) {
	offs = make(map[uint32]bool)
	var work []uint32
	for _, tl := range u.takenLabels() {
		work = append(work, tl.off)
	}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		if offs[off] {
			continue
		}
		offs[off] = true
		idx, ok := u.index[off]
		if !ok {
			continue
		}
		ci := u.insts[idx]
		reads.union(regUses(ci.in))
		writes.union(regDefs(ci.in))
		next, _ := u.succs(ci, noreturn)
		work = append(work, next...)
	}
	return reads, writes, offs
}

// provenance appends the expansion origin to a message when the
// instruction was produced by abstraction-layer expansion rather than
// written in the test source.
func provenance(msg, file, testPath string, line int) string {
	if file != "" && file != testPath {
		return fmt.Sprintf("%s (expanded from %s:%d)", msg, file, line)
	}
	return msg
}

// uninitFindings is the forward may-be-uninitialised analysis: a read of
// a register with no write on some path from test_main. Calls are
// treated as defining every register (the callee owns the convention),
// and registers written by asynchronous handler code count as
// initialised at entry.
func uninitFindings(u *cfgUnit, noreturn map[string]bool, base Finding, opts Options) []Finding {
	if !opts.enabled(CheckUninitRead) {
		return nil
	}
	entry, ok := u.labels["test_main"]
	if !ok {
		return nil
	}
	_, asyncWrites, _ := u.asyncRegs(noreturn)

	// state[off] is the set of registers possibly uninitialised when
	// control reaches off; join is union.
	state := make(map[uint32]regSet)
	init := allRegs
	init.del(isa.SP) // the platform initialises the stack pointer
	init.del(isa.RA) // crt0's CALL set the return address
	init &^= asyncWrites

	type item struct {
		off uint32
		in  regSet
	}
	work := []item{{entry, init}}
	reported := make(map[uint64]bool) // off<<8 | reg
	var out []Finding
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if prev, seen := state[it.off]; seen && prev|it.in == prev {
			continue // no new possibly-uninitialised register
		}
		state[it.off] |= it.in
		cur := state[it.off]
		idx, ok := u.index[it.off]
		if !ok {
			continue
		}
		ci := u.insts[idx]
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if regUses(ci.in).has(r) && cur.has(r) {
				key := uint64(ci.off)<<8 | uint64(r)
				if !reported[key] {
					reported[key] = true
					file, line := u.srcLine(ci.off)
					f := base
					f.Line = line
					f.Message = provenance(fmt.Sprintf(
						"register %s may be read before it is written: %s at text+0x%x has no reaching assignment on some path from test_main",
						r, ci.in.Op, ci.off), file, base.Path, line)
					out = append(out, finding(CheckUninitRead, f))
				}
			}
		}
		next := cur &^ regDefs(ci.in)
		if ci.in.Op == isa.OpCall || ci.in.Op == isa.OpCallI || ci.in.Op == isa.OpTrap {
			// A call or trap hands control to code with its own
			// convention; treat every register as defined afterwards.
			next = 0
		}
		offs, _ := u.succs(ci, noreturn)
		for _, s := range offs {
			work = append(work, item{s, next})
		}
	}
	return out
}

// Register-liveness conventions at synchronous exits: a RET hands d0/d1
// back to the caller; a noreturn reporter may consume d0/d1 (checkpoint
// values); HALT consumes nothing.
func retLive() regSet {
	var s regSet
	s.add(isa.D(0))
	s.add(isa.D(1))
	return s
}

// deadStoreFindings is the backward liveness analysis: a register write
// that no path reads before the next write to the same register or the
// unit's exit. Calls that can return treat every register as live (the
// callee may read any argument); noreturn reporters consume only the
// d0/d1 convention.
func deadStoreFindings(u *cfgUnit, noreturn map[string]bool, base Finding, opts Options) []Finding {
	if !opts.enabled(CheckDeadStore) {
		return nil
	}
	reached, _ := u.reach(noreturn)
	asyncReads, _, asyncOffs := u.asyncRegs(noreturn)

	// Predecessor lists over the reachable instructions.
	preds := make(map[uint32][]uint32)
	for i, ci := range u.insts {
		if !reached[i] {
			continue
		}
		offs, _ := u.succs(ci, noreturn)
		for _, s := range offs {
			preds[s] = append(preds[s], ci.off)
		}
	}

	liveOut := make(map[uint32]regSet)
	liveIn := make(map[uint32]regSet)
	// transfer computes liveIn from liveOut for one instruction.
	transfer := func(ci cfgInst, out regSet) regSet {
		uses := regUses(ci.in)
		switch ci.in.Op {
		case isa.OpCall, isa.OpCallI:
			sym := u.extSym[ci.off]
			if ci.in.Op == isa.OpCall && noreturn[sym] {
				uses.union(retLive()) // reporter may consume d0/d1
			} else {
				uses = allRegs // returning callee may read anything
			}
		case isa.OpRet:
			uses.union(retLive())
		}
		return uses | (out &^ regDefs(ci.in))
	}

	// Backward fixpoint.
	var work []uint32
	for i := len(u.insts) - 1; i >= 0; i-- {
		if reached[i] {
			work = append(work, u.insts[i].off)
		}
	}
	inWork := make(map[uint32]bool, len(work))
	for _, off := range work {
		inWork[off] = true
	}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[off] = false
		ci := u.insts[u.index[off]]
		var out regSet
		offs, _ := u.succs(ci, noreturn)
		for _, s := range offs {
			out |= liveIn[s]
		}
		liveOut[off] = out
		in := transfer(ci, out)
		if in != liveIn[off] {
			liveIn[off] = in
			for _, p := range preds[off] {
				if !inWork[p] {
					inWork[p] = true
					work = append(work, p)
				}
			}
		}
	}

	var outF []Finding
	for i, ci := range u.insts {
		// Handler code runs asynchronously: its writes may be read by the
		// synchronous flow without a CFG edge, so it is exempt.
		if !reached[i] || asyncOffs[ci.off] {
			continue
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if !regDefs(ci.in).has(r) || r == isa.SP || r == isa.RA {
				continue
			}
			if liveOut[ci.off].has(r) || asyncReads.has(r) {
				continue
			}
			file, line := u.srcLine(ci.off)
			f := base
			f.Line = line
			f.Message = provenance(fmt.Sprintf(
				"dead store: %s at text+0x%x writes %s but no path reads it before the next write or the test's exit",
				ci.in.Op, ci.off, r), file, base.Path, line)
			outF = append(outF, finding(CheckDeadStore, f))
		}
	}
	return outF
}
