package vet

// stackdepth.go folds the per-function stack analysis over the call
// graph: the worst-case stack depth of a function is its deepest local
// push chain, or the depth live at a call site plus the callee's
// worst-case depth — whichever is larger. A cycle in the call graph is
// unbounded recursion. The per-test bound is the synchronous entry
// chain's depth plus the deepest asynchronous handler, reported against
// the derivative's configured stack budget.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/derivative"
	"repro/internal/core/sysenv"
	"repro/internal/platform"
)

// depthResult is the memoised outcome of totalDepth for one function.
type depthResult struct {
	depth     int
	unbounded bool
	cycle     []string // non-nil when the function can recurse
}

type depthSolver struct {
	g     *callGraph
	memo  map[string]*depthResult
	stack []string // DFS path for cycle reporting
	on    map[string]bool
}

func newDepthSolver(g *callGraph) *depthSolver {
	return &depthSolver{g: g, memo: make(map[string]*depthResult), on: make(map[string]bool)}
}

// totalDepth computes the function's worst-case stack depth in bytes.
func (ds *depthSolver) totalDepth(name string) depthResult {
	if r, ok := ds.memo[name]; ok {
		return *r
	}
	f, ok := ds.g.funcs[name]
	if !ok {
		// Unknown callee (unresolved external): contributes nothing.
		return depthResult{}
	}
	if ds.on[name] {
		// Back edge: the DFS path from the first sighting is the cycle.
		var cyc []string
		for i := len(ds.stack) - 1; i >= 0; i-- {
			cyc = append([]string{ds.stack[i]}, cyc...)
			if ds.stack[i] == name {
				break
			}
		}
		return depthResult{cycle: append(cyc, name)}
	}
	ds.on[name] = true
	ds.stack = append(ds.stack, name)
	r := depthResult{depth: f.localMax, unbounded: f.unbounded}
	for _, cs := range f.calls {
		sub := ds.totalDepth(cs.callee)
		if sub.cycle != nil && r.cycle == nil {
			r.cycle = sub.cycle
		}
		if sub.unbounded {
			r.unbounded = true
		}
		if d := cs.depthAt + sub.depth; d > r.depth {
			r.depth = d
		}
	}
	ds.stack = ds.stack[:len(ds.stack)-1]
	ds.on[name] = false
	ds.memo[name] = &r
	return r
}

// callSiteOf finds the first call site of callee inside a test-layer
// function, for finding placement.
func (g *callGraph) callSiteOf(callee string) (file string, line int, ok bool) {
	for _, name := range g.names {
		f := g.funcs[name]
		if f.unit.layer != layerTest {
			continue
		}
		for _, cs := range f.calls {
			if cs.callee == callee {
				fl, ln := f.unit.u.srcLine(cs.off)
				return fl, ln, true
			}
		}
	}
	return "", 0, false
}

// flowFindings is the whole-program pass for one derivative: per test it
// builds the linked image's call graph, runs the stack-depth analysis
// against the derivative's stack budget, checks the object-level layer
// discipline, and runs the register dataflow analyses on the test unit.
func flowFindings(s *sysenv.System, d *derivative.Derivative, k platform.Kind, opts Options) ([]Finding, []StackBound) {
	tree := s.Materialise(d)
	var out []Finding
	var bounds []StackBound
	for _, e := range s.Envs() {
		noreturn := noreturnFuncs(tree, e, d, k)
		shared := sharedUnits(tree, e, d, k)
		globals := globalFuncLabels(shared)
		for _, t := range e.Tests() {
			path := e.TestSourcePath(t.ID)
			base := Finding{Path: path, Module: e.Module, Test: t.ID}
			units := programUnits(tree, e, t, d, k, shared)
			if units == nil {
				continue // the cfg pass reports the build error
			}
			tu := units[0]
			g := buildCallGraph(units, noreturn)
			out = append(out, stackFindings(g, tu, d, base, opts, &bounds)...)
			out = append(out, layerCallFindings(g, globals, base, opts)...)
			out = append(out, uninitFindings(tu.u, noreturn, base, opts)...)
			out = append(out, deadStoreFindings(tu.u, noreturn, base, opts)...)
		}
	}
	return out, bounds
}

// stackFindings evaluates one test's worst-case stack depth and appends
// its row to the bound table.
func stackFindings(g *callGraph, tu *cgUnitInfo, d *derivative.Derivative, base Finding, opts Options, bounds *[]StackBound) []Finding {
	entry := "test_main"
	if _, ok := g.funcs["_start"]; ok {
		entry = "_start"
	}
	ds := newDepthSolver(g)
	r := ds.totalDepth(entry)

	// Asynchronous handlers run on top of whatever is live: add the
	// deepest address-taken entry of the test unit.
	handlerMax, handlerUnbounded := 0, false
	var handlerCycle []string
	for _, tl := range tu.u.takenLabels() {
		hr := ds.totalDepth(tl.sym)
		if hr.depth > handlerMax {
			handlerMax = hr.depth
		}
		if hr.unbounded {
			handlerUnbounded = true
		}
		if hr.cycle != nil && handlerCycle == nil {
			handlerCycle = hr.cycle
		}
	}
	depth := r.depth + handlerMax
	unbounded := r.unbounded || handlerUnbounded
	cycle := r.cycle
	if cycle == nil {
		cycle = handlerCycle
	}

	var out []Finding
	switch {
	case cycle != nil:
		if opts.enabled(CheckStackRecursion) {
			f := base
			if file, line, ok := g.callSiteOf(cycle[0]); ok && file == base.Path {
				f.Line = line
			}
			f.Message = fmt.Sprintf("recursive call cycle %s: worst-case stack depth is unbounded",
				strings.Join(cycle, " -> "))
			out = append(out, finding(CheckStackRecursion, f))
		}
		depth = -1
	case unbounded:
		if opts.enabled(CheckStackUnbounded) {
			f := base
			f.Message = "a loop grows the stack without bound: pushes are not balanced by pops on the loop's back edge"
			out = append(out, finding(CheckStackUnbounded, f))
		}
		depth = -1
	case uint32(depth) > d.StackBytes:
		if opts.enabled(CheckStackOverflow) {
			f := base
			f.Message = fmt.Sprintf("worst-case stack depth %d bytes exceeds the %s stack budget of %d bytes",
				depth, d.Name, d.StackBytes)
			out = append(out, finding(CheckStackOverflow, f))
		}
	}
	*bounds = append(*bounds, StackBound{
		Module:      base.Module,
		Test:        base.Test,
		Derivative:  d.Name,
		DepthBytes:  depth,
		BudgetBytes: int(d.StackBytes),
	})
	return out
}

// layerCallFindings is the object-level layer-discipline check: a call
// edge from test-layer code straight into a global-layer function
// bypasses the abstraction layer, however the reference was spelled.
// Call sites whose source provenance is an abstraction-layer expansion
// are sanctioned — the analyzer judges what the author wrote.
func layerCallFindings(g *callGraph, globals map[string]bool, base Finding, opts Options) []Finding {
	if !opts.enabled(CheckLayerCall) {
		return nil
	}
	var out []Finding
	for _, name := range g.names {
		f := g.funcs[name]
		if f.unit.layer != layerTest {
			continue
		}
		for _, cs := range f.calls {
			if !globals[cs.callee] {
				continue
			}
			file, line := f.unit.u.srcLine(cs.off)
			if file != "" && file != base.Path {
				continue // expanded from the abstraction layer: sanctioned
			}
			how := "calls"
			if cs.indirect {
				how = "indirectly calls"
			}
			fd := base
			fd.Line = line
			fd.Message = fmt.Sprintf("test-layer code %s global-layer function %s directly; route the call through a Base function",
				how, cs.callee)
			out = append(out, finding(CheckLayerCall, fd))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sortKey() < out[j].sortKey() })
	return out
}
