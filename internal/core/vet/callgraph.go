package vet

// callgraph.go builds the whole-program call graph for one test cell:
// the test unit plus the module's Base_Functions unit plus the three
// global-layer units — exactly the translation units the build pipeline
// links into the final image. Nodes are call-target labels; each node
// carries its call sites with the stack bytes live at the site, so the
// stack-depth analysis (stackdepth.go) can fold worst-case callee depths
// over the graph, and the object-level layer-discipline check can walk
// the edges.

import (
	"sort"

	"repro/internal/core/derivative"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/platform"
)

// cgLayer classifies which ADVM layer a translation unit belongs to.
type cgLayer int

const (
	layerTest cgLayer = iota
	layerAbstraction
	layerGlobal
)

// cgUnitInfo is one decoded translation unit of the program.
type cgUnitInfo struct {
	u     *cfgUnit
	path  string
	layer cgLayer
	// indirect resolves CALLI sites to the symbol last materialised into
	// the register (the Figure 7 "LOAD CallAddr, fn / CALL CallAddr"
	// idiom).
	indirect map[uint32]string
}

// cgCallSite is one call edge origin.
type cgCallSite struct {
	callee   string
	off      uint32 // call-site offset in the caller's unit
	depthAt  int    // stack bytes pushed when control reaches the site
	indirect bool
}

// cgFunc is one call-graph node.
type cgFunc struct {
	name      string
	unit      *cgUnitInfo
	entry     uint32
	localMax  int  // worst-case stack bytes pushed inside the function
	unbounded bool // a loop grows the stack without bound
	calls     []cgCallSite
}

// callGraph is the whole-program view for one linked test image.
type callGraph struct {
	funcs map[string]*cgFunc
	names []string // deterministic iteration order
}

// decodeProgramUnit assembles and decodes one unit of the program;
// a unit that does not assemble or decode is skipped (the cfg pass
// reports build errors).
func decodeProgramUnit(tree map[string]string, module, path string, d *derivative.Derivative, k platform.Kind, layer cgLayer) *cgUnitInfo {
	src, ok := tree[path]
	if !ok {
		return nil
	}
	o, err := assembleUnit(tree, module, path, src, d, k)
	if err != nil {
		return nil
	}
	u, err := decodeUnit(o)
	if err != nil {
		return nil
	}
	return &cgUnitInfo{u: u, path: path, layer: layer, indirect: indirectTargets(u)}
}

// indirectTargets resolves CALLI sites through the materialisation idiom:
// within a straight-line run (no intervening label), a CALLI through a
// register whose most recent write materialised a symbol address calls
// that symbol. Any other write to the register, or a call (whose callee
// may clobber), clears the tracking.
func indirectTargets(u *cfgUnit) map[uint32]string {
	out := make(map[uint32]string)
	labelOffs := make(map[uint32]bool, len(u.labels))
	for _, off := range u.labels {
		labelOffs[off] = true
	}
	last := make(map[isa.Reg]string)
	for _, ci := range u.insts {
		if labelOffs[ci.off] {
			// A label is a potential merge point; drop all tracking.
			last = make(map[isa.Reg]string)
		}
		in := ci.in
		if in.Op == isa.OpCallI {
			if sym, ok := last[in.Rs]; ok {
				out[ci.off] = sym
			}
		}
		switch {
		case (in.Op == isa.OpLea || in.Op == isa.OpMovX) && u.extSym[ci.off] != "":
			last[in.Rd] = u.extSym[ci.off]
		case in.Op == isa.OpCall || in.Op == isa.OpCallI:
			last = make(map[isa.Reg]string)
		default:
			for r := isa.Reg(0); r < isa.NumRegs; r++ {
				if regDefs(in).has(r) {
					delete(last, r)
				}
			}
		}
	}
	return out
}

// buildCallGraph collects the call-target labels across the units and
// analyses each as a function.
func buildCallGraph(units []*cgUnitInfo, noreturn map[string]bool) *callGraph {
	g := &callGraph{funcs: make(map[string]*cgFunc)}

	// Every symbol any unit calls, plus the architectural entry points.
	targets := map[string]bool{"test_main": true, "_start": true}
	for _, ui := range units {
		for _, ci := range ui.u.insts {
			switch ci.in.Op {
			case isa.OpCall:
				if sym := ui.u.extSym[ci.off]; sym != "" {
					targets[sym] = true
				}
			case isa.OpCallI:
				if sym, ok := ui.indirect[ci.off]; ok {
					targets[sym] = true
				}
			}
		}
		// Address-taken labels are asynchronous entry points (handlers);
		// their stack use rides on top of the synchronous depth.
		for _, tl := range ui.u.takenLabels() {
			targets[tl.sym] = true
		}
	}

	for _, ui := range units {
		for name := range targets {
			entry, local := ui.u.labels[name]
			if !local {
				continue
			}
			if _, dup := g.funcs[name]; dup {
				continue // first unit wins; the linker would reject duplicates
			}
			f := &cgFunc{name: name, unit: ui, entry: entry}
			analyseFunc(f, noreturn)
			g.funcs[name] = f
			g.names = append(g.names, name)
		}
	}
	sort.Strings(g.names)
	return g
}

// stackGrowthCap bounds the max-depth fixpoint: a walk that pushes past
// it (or keeps improving past the visit budget) is growing the stack in
// a loop.
const stackGrowthCap = 1 << 20

// analyseFunc walks the function's CFG from its entry, tracking the
// worst-case stack bytes at every offset. Pushes appear as the
// assembler's PUSH lowering (LEAO sp, sp, -n); the walk follows branches
// and local jumps, falls through calls (unless the callee is noreturn),
// and stops at RET/HALT/RFE.
func analyseFunc(f *cgFunc, noreturn map[string]bool) {
	u := f.unit.u
	best := make(map[uint32]int)
	sites := make(map[uint32]*cgCallSite)
	type item struct {
		off   uint32
		depth int
	}
	work := []item{{f.entry, 0}}
	visits, maxVisits := 0, (len(u.insts)+1)*64
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if b, seen := best[it.off]; seen && it.depth <= b {
			continue
		}
		best[it.off] = it.depth
		if visits++; visits > maxVisits || it.depth > stackGrowthCap {
			f.unbounded = true
			break
		}
		idx, ok := u.index[it.off]
		if !ok {
			continue
		}
		ci := u.insts[idx]
		depth := it.depth
		if ci.in.Op == isa.OpLeaO && ci.in.Rd == isa.SP && ci.in.Rs == isa.SP {
			depth -= int(ci.in.Imm) // negative offset = push
			if depth < 0 {
				depth = 0 // popping past the entry frame; clamp
			}
		}
		if depth > f.localMax {
			f.localMax = depth
		}
		var callee string
		indirect := false
		switch ci.in.Op {
		case isa.OpCall:
			callee = u.extSym[ci.off]
		case isa.OpCallI:
			callee, indirect = f.unit.indirect[ci.off], true
		}
		if callee != "" {
			cs, seen := sites[ci.off]
			if !seen {
				cs = &cgCallSite{callee: callee, off: ci.off, indirect: indirect}
				sites[ci.off] = cs
			}
			if depth > cs.depthAt {
				cs.depthAt = depth
			}
		}
		offs, _ := u.succs(ci, noreturn)
		for _, s := range offs {
			work = append(work, item{s, depth})
		}
	}
	f.calls = f.calls[:0]
	for _, cs := range sites {
		f.calls = append(f.calls, *cs)
	}
	sort.Slice(f.calls, func(i, j int) bool { return f.calls[i].off < f.calls[j].off })
}

// programUnits assembles and decodes the full unit set for one test cell.
func programUnits(tree map[string]string, e *env.Env, t *env.TestCell, d *derivative.Derivative, k platform.Kind, shared []*cgUnitInfo) []*cgUnitInfo {
	testPath := e.TestSourcePath(t.ID)
	tu := decodeProgramUnit(tree, e.Module, testPath, d, k, layerTest)
	if tu == nil {
		return nil
	}
	return append([]*cgUnitInfo{tu}, shared...)
}

// sharedUnits decodes the units every test of an environment links
// against: the module's Base_Functions plus the three global-layer
// units.
func sharedUnits(tree map[string]string, e *env.Env, d *derivative.Derivative, k platform.Kind) []*cgUnitInfo {
	var out []*cgUnitInfo
	if ui := decodeProgramUnit(tree, e.Module, e.Module+"/"+env.BaseFuncsFile, d, k, layerAbstraction); ui != nil {
		out = append(out, ui)
	}
	for _, p := range []string{sysenv.Crt0File, sysenv.TrapHandlersFile, sysenv.EmbeddedSWFile} {
		if ui := decodeProgramUnit(tree, e.Module, sysenv.GlobalDir+"/"+p, d, k, layerGlobal); ui != nil {
			out = append(out, ui)
		}
	}
	return out
}

// globalFuncLabels returns the text labels the global-layer units
// define — the functions a test must never call directly.
func globalFuncLabels(units []*cgUnitInfo) map[string]bool {
	out := make(map[string]bool)
	for _, ui := range units {
		if ui.layer != layerGlobal {
			continue
		}
		for _, sym := range ui.u.o.Symbols {
			if !sym.Abs && sym.Section == obj.SecText {
				out[sym.Name] = true
			}
		}
	}
	return out
}
