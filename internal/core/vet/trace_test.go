package vet

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
	"repro/internal/testprog"
)

// injectCataloguedTest is injectTest plus the shipped requirements
// catalogue, so the traceability pass runs.
func injectCataloguedTest(t *testing.T, module string, cell env.TestCell) *sysenv.System {
	t.Helper()
	sys := injectTest(t, module, cell)
	sys.SetRequirements(content.Requirements())
	return sys
}

func TestRequirementRefs(t *testing.T) {
	src := `;; TEST_X
; REQ: REQ-A-001, REQ-B-002
test_main:
    LOAD d0, 1 ; REQ: REQ-A-001
    ; REQ: REQ-C-003
`
	ids, lines := requirementRefs(src)
	if !reflect.DeepEqual(ids, []string{"REQ-A-001", "REQ-B-002", "REQ-C-003"}) {
		t.Errorf("ids = %v", ids)
	}
	if lines["REQ-A-001"] != 2 || lines["REQ-B-002"] != 2 || lines["REQ-C-003"] != 5 {
		t.Errorf("lines = %v (first sighting wins)", lines)
	}
}

// TestShippedTraceabilityMatrix: the shipped catalogue is fully covered,
// every test claims at least one requirement, and the matrix is
// deterministic.
func TestShippedTraceabilityMatrix(t *testing.T) {
	s := content.PortedSystem()
	m := Traceability(s)
	if len(m.Requirements) != len(content.Requirements()) {
		t.Fatalf("matrix has %d requirements, catalogue has %d", len(m.Requirements), len(content.Requirements()))
	}
	for _, r := range m.Requirements {
		if len(r.Tests) == 0 {
			t.Errorf("requirement %s has no covering test", r.ID)
		}
	}
	if len(m.Tests) != content.NumTests {
		t.Fatalf("matrix has %d test rows, want %d", len(m.Tests), content.NumTests)
	}
	for _, row := range m.Tests {
		if len(row.Reqs) == 0 {
			t.Errorf("test %s/%s claims no requirement", row.Module, row.Test)
		}
	}
	if !reflect.DeepEqual(m, Traceability(s)) {
		t.Error("two Traceability runs differ")
	}
}

// TestMissingRequirementFlagged: against a catalogued system, a test
// without a `; REQ:` annotation is an error; the shipped tests stay
// clean.
func TestMissingRequirementFlagged(t *testing.T) {
	sys := injectCataloguedTest(t, content.ModuleUART, env.TestCell{
		ID: "TEST_UART_SEEDED_NOREQ", Source: testprog.SeededMissingReq,
	})
	r := Check(sys, NewOptions())
	for _, f := range r.Findings {
		if f.Check != CheckNoRequirement {
			continue
		}
		if f.Test != "TEST_UART_SEEDED_NOREQ" {
			t.Errorf("no-requirement fired on %s/%s", f.Module, f.Test)
			continue
		}
		if f.Severity != SevError {
			t.Errorf("severity = %v, want error", f.Severity)
		}
	}
	if got := countByCheck(findingsFor(r, "TEST_UART_SEEDED_NOREQ"))[CheckNoRequirement]; got != 1 {
		t.Errorf("trace/no-requirement count = %d, want 1", got)
	}
}

// TestUnknownRequirementFlagged: an annotation naming a requirement the
// catalogue does not know is dangling, reported at the annotation line.
func TestUnknownRequirementFlagged(t *testing.T) {
	sys := injectCataloguedTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SEEDED_DANGLING",
		Source: `;; seeded defect: names a requirement that does not exist
; REQ: REQ-NVM-001, REQ-BOGUS-999
.INCLUDE "Globals.inc"
test_main:
    CALL Base_Report_Pass
`,
	})
	r := Check(sys, NewOptions())
	fs := findingsFor(r, "TEST_NVM_SEEDED_DANGLING")
	got := countByCheck(fs)
	if got[CheckUnknownRequirement] != 1 {
		t.Fatalf("trace/unknown-requirement count = %d, want 1; findings: %v", got[CheckUnknownRequirement], fs)
	}
	if got[CheckNoRequirement] != 0 {
		t.Errorf("no-requirement fired despite a valid annotation")
	}
	for _, f := range fs {
		if f.Check == CheckUnknownRequirement {
			if f.Line != 2 || !strings.Contains(f.Message, "REQ-BOGUS-999") {
				t.Errorf("dangling finding = %+v, want line 2 naming REQ-BOGUS-999", f)
			}
		}
	}
}

// TestUncoveredRequirementFlagged: a catalogue entry no test claims
// fails the suite, as a catalogue-level finding with no source location.
func TestUncoveredRequirementFlagged(t *testing.T) {
	s := content.PortedSystem()
	s.SetRequirements(append(content.Requirements(),
		sysenv.Requirement{ID: "REQ-GAP-001", Title: "a requirement nothing verifies"}))
	r := Check(s, NewOptions())
	var hits []Finding
	for _, f := range r.Findings {
		if f.Check == CheckUncoveredRequirement {
			hits = append(hits, f)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("trace/uncovered-requirement count = %d, want 1", len(hits))
	}
	f := hits[0]
	if !strings.Contains(f.Message, "REQ-GAP-001") || f.Path != "" || f.Severity != SevError {
		t.Errorf("uncovered finding = %+v, want a path-free error naming REQ-GAP-001", f)
	}
}

// TestNoCatalogueNoTraceFindings: scratch systems without a catalogue
// are exempt from traceability — it is a certification property, not a
// property of every assembly of tests.
func TestNoCatalogueNoTraceFindings(t *testing.T) {
	sys := injectTest(t, content.ModuleUART, env.TestCell{
		ID: "TEST_UART_SEEDED_NOREQ", Source: testprog.SeededMissingReq,
	})
	r := Check(sys, NewOptions())
	for _, f := range r.Findings {
		switch f.Check {
		case CheckNoRequirement, CheckUnknownRequirement, CheckUncoveredRequirement:
			t.Errorf("trace finding on a catalogue-free system: %s", f)
		}
	}
}
