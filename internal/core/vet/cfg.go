package vet

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/core/derivative"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
	"repro/internal/isa"
	"repro/internal/obj"
	"repro/internal/platform"
	"repro/internal/translate"
)

// cfgFindings is the control-flow pass: every test cell is assembled the
// way the build pipeline would and its text section decoded into a
// control-flow graph. The pass is deliberately limited to test units —
// library code renders a defensive trailing RET after noreturn bodies,
// which is structural, not a test-author mistake.
func cfgFindings(s *sysenv.System, d *derivative.Derivative, k platform.Kind, opts Options) []Finding {
	tree := s.Materialise(d)
	var out []Finding
	for _, e := range s.Envs() {
		noreturn := noreturnFuncs(tree, e, d, k)
		for _, t := range e.Tests() {
			path := e.TestSourcePath(t.ID)
			base := Finding{Path: path, Module: e.Module, Test: t.ID}
			o, err := assembleUnit(tree, e.Module, path, t.Source, d, k)
			if err != nil {
				if opts.enabled(CheckBuildError) {
					f := base
					f.Message = "test does not assemble: " + firstLine(err.Error())
					out = append(out, finding(CheckBuildError, f))
				}
				continue
			}
			out = append(out, checkCFG(o, noreturn, d, base, opts)...)
		}
	}
	return out
}

func assembleUnit(tree map[string]string, module, path, src string, d *derivative.Derivative, k platform.Kind) (*obj.Object, error) {
	return asm.Assemble(path, src, asm.Options{
		Resolver: sysenv.NewResolver(tree, module),
		Defines:  sysenv.BuildDefines(d, k),
	})
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i] + " ..."
		}
	}
	return s
}

// ---- decoded unit ----

type cfgInst struct {
	off  uint32
	size uint32 // bytes
	in   isa.Inst
}

type cfgUnit struct {
	o      *obj.Object
	insts  []cfgInst
	index  map[uint32]int    // text offset -> instruction index
	labels map[string]uint32 // local text labels -> offset
	// extSym maps an ext-word instruction's offset to the symbol its
	// second word relocates to (JMP/CALL targets, address materialisation).
	extSym map[uint32]string
}

// decodeUnit decodes the object's text section. A word that does not
// decode stops the walk (the assembler never emits one; text is
// code-only in this ISA).
func decodeUnit(o *obj.Object) (*cfgUnit, error) {
	u := &cfgUnit{
		o:      o,
		index:  make(map[uint32]int),
		labels: make(map[string]uint32),
		extSym: make(map[uint32]string),
	}
	words := make([]uint32, len(o.Text)/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(o.Text[i*4:])
	}
	for off := 0; off < len(words); {
		in, size, ok := isa.Decode(words[off:])
		if !ok {
			return nil, fmt.Errorf("text+0x%x: word 0x%08x does not decode", off*4, words[off])
		}
		u.index[uint32(off*4)] = len(u.insts)
		u.insts = append(u.insts, cfgInst{off: uint32(off * 4), size: uint32(size * 4), in: in})
		off += size
	}
	for _, sym := range o.Symbols {
		if !sym.Abs && sym.Section == obj.SecText {
			u.labels[sym.Name] = sym.Off
		}
	}
	for _, rel := range o.Relocs {
		if rel.Section != obj.SecText || rel.Kind != obj.RelAbs32 {
			continue
		}
		// The extension word sits at instruction offset + 4.
		u.extSym[rel.Off-4] = rel.Sym
	}
	return u, nil
}

// textLen returns the text section size in bytes.
func (u *cfgUnit) textLen() uint32 { return uint32(len(u.o.Text)) }

// succs returns the instruction's CFG successor offsets. fallsOff is set
// when a successor would be past the end of the section.
func (u *cfgUnit) succs(ci cfgInst, noreturn map[string]bool) (offs []uint32, fallsOff bool) {
	next := ci.off + ci.size
	fall := func() {
		if next >= u.textLen() {
			fallsOff = true
		} else {
			offs = append(offs, next)
		}
	}
	in := ci.in
	switch {
	case in.Op == isa.OpRet || in.Op == isa.OpHalt || in.Op == isa.OpRfe:
		// Terminators.
	case in.Op == isa.OpJmp:
		if sym, ok := u.extSym[ci.off]; ok {
			if target, local := u.labels[sym]; local {
				offs = append(offs, target)
			}
			// External jump: control leaves the unit for good.
		}
		// Constant-address jump: target unknowable pre-link; treat as exit.
	case in.Op == isa.OpJI:
		// Indirect jump: unknowable target, treat as exit.
	case in.Op == isa.OpCall:
		if sym, ok := u.extSym[ci.off]; ok && noreturn[sym] {
			break // callee never returns
		}
		fall()
	case in.Op == isa.OpCallI:
		fall() // indirect callee assumed to return
	case in.Op.IsBranch():
		target := int64(ci.off) + 4 + int64(in.Imm)*4
		if target >= 0 && uint32(target) < u.textLen() {
			offs = append(offs, uint32(target))
		}
		fall()
	default:
		fall()
	}
	return offs, fallsOff
}

// roots returns the CFG entry offsets: the test entry point plus every
// address-taken text label — a label materialised into a register or a
// data word is a potential hardware entry (interrupt/trap handler) and
// must count as reachable.
func (u *cfgUnit) roots() []uint32 {
	var out []uint32
	if off, ok := u.labels["test_main"]; ok {
		out = append(out, off)
	} else if len(u.insts) > 0 {
		out = append(out, 0)
	}
	// Text relocs on non-control-transfer instructions.
	for off, sym := range u.extSym {
		idx, ok := u.index[off]
		if !ok {
			continue
		}
		op := u.insts[idx].in.Op
		if op == isa.OpJmp || op == isa.OpCall {
			continue
		}
		if target, local := u.labels[sym]; local {
			out = append(out, target)
		}
	}
	// Data-section relocs (e.g. handler addresses in tables).
	for _, rel := range u.o.Relocs {
		if rel.Section == obj.SecText {
			continue
		}
		if target, local := u.labels[rel.Sym]; local {
			out = append(out, target)
		}
	}
	return out
}

// reach computes the reachable instruction set and whether any reachable
// path falls off the section; fallOff reports the offending offset.
func (u *cfgUnit) reach(noreturn map[string]bool) (reached []bool, fallOffAt []uint32) {
	reached = make([]bool, len(u.insts))
	var work []uint32
	seen := make(map[uint32]bool)
	push := func(off uint32) {
		if !seen[off] {
			seen[off] = true
			work = append(work, off)
		}
	}
	for _, r := range u.roots() {
		push(r)
	}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		idx, ok := u.index[off]
		if !ok {
			continue // mid-instruction target; assembler never emits one
		}
		reached[idx] = true
		offs, fallsOff := u.succs(u.insts[idx], noreturn)
		if fallsOff {
			fallOffAt = append(fallOffAt, off)
		}
		for _, s := range offs {
			push(s)
		}
	}
	sort.Slice(fallOffAt, func(i, j int) bool { return fallOffAt[i] < fallOffAt[j] })
	return reached, fallOffAt
}

// blockLeaders returns the set of text offsets where the superblock
// translation engine can begin a block: the section start, every static
// control-transfer target, and every instruction following one that
// ends a block (mirroring translate.Form's formation rule). Any other
// offset is mid-block.
func (u *cfgUnit) blockLeaders() map[uint32]bool {
	leaders := make(map[uint32]bool)
	if len(u.insts) > 0 {
		leaders[0] = true
	}
	for _, ci := range u.insts {
		if translate.EndsBlock(ci.in.Op) {
			leaders[ci.off+ci.size] = true
		}
		switch {
		case ci.in.Op.IsBranch():
			target := int64(ci.off) + 4 + int64(ci.in.Imm)*4
			if target >= 0 && uint32(target) < u.textLen() {
				leaders[uint32(target)] = true
			}
		case ci.in.Op == isa.OpJmp || ci.in.Op == isa.OpCall:
			if sym, ok := u.extSym[ci.off]; ok {
				if target, local := u.labels[sym]; local {
					leaders[target] = true
				}
			}
		}
	}
	return leaders
}

// takenLabel is an address-taken local label: its address escapes into
// a register or a data word, so a computed jump can land on it.
type takenLabel struct {
	sym string
	off uint32
}

// takenLabels lists the local text labels whose addresses escape —
// materialised by a non-control-transfer instruction (LOAD a#, label)
// or stored in a data word (handler tables). These are exactly the
// roots the reachability walk treats as potential hardware entries.
func (u *cfgUnit) takenLabels() []takenLabel {
	var out []takenLabel
	seen := make(map[string]bool)
	add := func(sym string) {
		if seen[sym] {
			return
		}
		if off, local := u.labels[sym]; local {
			seen[sym] = true
			out = append(out, takenLabel{sym: sym, off: off})
		}
	}
	for off, sym := range u.extSym {
		idx, ok := u.index[off]
		if !ok {
			continue
		}
		op := u.insts[idx].in.Op
		if op == isa.OpJmp || op == isa.OpCall {
			continue
		}
		add(sym)
	}
	for _, rel := range u.o.Relocs {
		if rel.Section != obj.SecText {
			add(rel.Sym)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].off < out[j].off })
	return out
}

// srcLine maps a text offset to its source file/line via the object's
// line table.
func (u *cfgUnit) srcLine(off uint32) (string, int) {
	file, line := "", 0
	for _, li := range u.o.Lines {
		if li.Off <= off {
			file, line = li.File, li.Line
		} else {
			break
		}
	}
	return file, line
}

// labelAt returns a label defined at the offset, if any.
func (u *cfgUnit) labelAt(off uint32) string {
	for name, lo := range u.labels {
		if lo == off {
			return name
		}
	}
	return ""
}

// ---- checks ----

func checkCFG(o *obj.Object, noreturn map[string]bool, d *derivative.Derivative, base Finding, opts Options) []Finding {
	u, err := decodeUnit(o)
	if err != nil {
		if !opts.enabled(CheckBuildError) {
			return nil
		}
		f := base
		f.Message = "text section does not decode: " + err.Error()
		return []Finding{finding(CheckBuildError, f)}
	}
	if len(u.insts) == 0 {
		return nil
	}
	reached, fallOff := u.reach(noreturn)
	var out []Finding

	// Unreachable code: report the head of each maximal unreachable run.
	if opts.enabled(CheckUnreachable) {
		for i := 0; i < len(u.insts); i++ {
			if reached[i] {
				continue
			}
			head := u.insts[i]
			for i+1 < len(u.insts) && !reached[i+1] {
				i++
			}
			_, line := u.srcLine(head.off)
			f := base
			f.Line = line
			what := fmt.Sprintf("text+0x%x", head.off)
			if lbl := u.labelAt(head.off); lbl != "" {
				what = lbl
			}
			f.Message = fmt.Sprintf("unreachable code at %s: no path from the entry or any address-taken label reaches it", what)
			out = append(out, finding(CheckUnreachable, f))
		}
	}

	// Fall-through off the section.
	if opts.enabled(CheckFallThrough) {
		for _, off := range fallOff {
			_, line := u.srcLine(off)
			f := base
			f.Line = line
			f.Message = fmt.Sprintf("execution can fall off the end of the text section after %s at text+0x%x", u.insts[u.index[off]].in.Op, off)
			out = append(out, finding(CheckFallThrough, f))
		}
	}

	// CALL/RET imbalance: a reachable RET after a reachable CALL without
	// any save of the return address means RET re-enters the last callee.
	if opts.enabled(CheckCallImbalance) {
		sawCall, savesRA := false, false
		var retAt *cfgInst
		for i := range u.insts {
			if !reached[i] {
				continue
			}
			in := u.insts[i].in
			switch {
			case in.Op == isa.OpCall || in.Op == isa.OpCallI:
				sawCall = true
			case in.Op == isa.OpStA && in.Rd == isa.RA:
				savesRA = true
			case in.Op == isa.OpRet && retAt == nil:
				retAt = &u.insts[i]
			}
		}
		if sawCall && retAt != nil && !savesRA {
			_, line := u.srcLine(retAt.off)
			f := base
			f.Line = line
			f.Message = "RET executes after a CALL clobbered the return address and ra is never saved; PUSH ra / POP ra around the calls"
			out = append(out, finding(CheckCallImbalance, f))
		}
	}

	// Superblock-hostile computed-jump targets: warn when an
	// address-taken label points into the middle of a superblock. The
	// translation engine forms blocks at the entry, at static branch
	// targets, and after block-ending instructions; a JI/CALLI through a
	// label anywhere else enters code mid-block, so the engine must form
	// and cache a second block overlapping the first — double lowering
	// work and a cold dispatch on every indirect entry.
	if opts.enabled(CheckSuperblockHostile) {
		leaders := u.blockLeaders()
		for _, tl := range u.takenLabels() {
			if leaders[tl.off] {
				continue
			}
			_, line := u.srcLine(tl.off)
			f := base
			f.Line = line
			f.Message = fmt.Sprintf("address-taken label %s (text+0x%x) is a computed-jump target in the middle of a superblock; the translation engine must form an overlapping block for it — place the label after a control transfer or make it a direct branch target", tl.sym, tl.off)
			out = append(out, finding(CheckSuperblockHostile, f))
		}
	}

	// Missing PASS/FAIL epilogue: some reachable instruction must report
	// a result — a call into a noreturn reporter or a direct store to the
	// mailbox result register.
	if opts.enabled(CheckNoEpilogue) {
		mboxResult := d.HW.MboxBase // + periph.MboxResult == +0
		reports := false
		for i := range u.insts {
			if !reached[i] {
				continue
			}
			ci := u.insts[i]
			switch {
			case ci.in.Op == isa.OpCall:
				if sym, ok := u.extSym[ci.off]; ok && noreturn[sym] {
					reports = true
				}
			case ci.in.Op == isa.OpStWX:
				if _, symbolic := u.extSym[ci.off]; !symbolic && uint32(ci.in.Imm) >= mboxResult && uint32(ci.in.Imm) < mboxResult+blockSpan {
					reports = true
				}
			case ci.in.Op == isa.OpStW || ci.in.Op == isa.OpStA:
				// Register-indirect stores may hit the mailbox; give the
				// test the benefit of the doubt only when the address was
				// materialised from a mailbox-block constant — otherwise
				// keep looking.
			}
			if reports {
				break
			}
		}
		if !reports {
			f := base
			f.Message = "no reachable PASS/FAIL epilogue: the test never calls a reporting Base function nor stores to the mailbox result register"
			out = append(out, finding(CheckNoEpilogue, f))
		}
	}
	return out
}

// ---- noreturn analysis over the abstraction layer ----

// noreturnFuncs assembles the environment's Base_Functions unit and
// computes, by fixpoint, which base functions can never return: no path
// from the function's entry reaches a RET, where a CALL to a function
// already known not to return has no fall-through edge. The rendered
// trailing RET after a HALT body is exactly what this analysis sees
// through.
func noreturnFuncs(tree map[string]string, e *env.Env, d *derivative.Derivative, k platform.Kind) map[string]bool {
	path := e.Module + "/" + env.BaseFuncsFile
	src, ok := tree[path]
	if !ok {
		return nil
	}
	o, err := assembleUnit(tree, e.Module, path, src, d, k)
	if err != nil {
		return nil
	}
	u, err := decodeUnit(o)
	if err != nil {
		return nil
	}
	entries := e.Funcs.Names()
	noreturn := make(map[string]bool)
	// Iterate to fixpoint: marking one function noreturn can cut the only
	// fall-through path that let another reach RET.
	for {
		changed := false
		for _, name := range entries {
			if noreturn[name] {
				continue
			}
			entry, ok := u.labels[name]
			if !ok {
				continue
			}
			if !reachesRet(u, entry, noreturn) {
				noreturn[name] = true
				changed = true
			}
		}
		if !changed {
			return noreturn
		}
	}
}

// reachesRet walks the unit CFG from entry and reports whether any path
// reaches a RET instruction.
func reachesRet(u *cfgUnit, entry uint32, noreturn map[string]bool) bool {
	seen := make(map[uint32]bool)
	work := []uint32{entry}
	for len(work) > 0 {
		off := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[off] {
			continue
		}
		seen[off] = true
		idx, ok := u.index[off]
		if !ok {
			continue
		}
		ci := u.insts[idx]
		if ci.in.Op == isa.OpRet {
			return true
		}
		offs, _ := u.succs(ci, noreturn)
		work = append(work, offs...)
	}
	return false
}
