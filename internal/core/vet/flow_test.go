package vet

import (
	"strings"
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/derivative"
	"repro/internal/core/env"
	"repro/internal/platform"
	"repro/internal/testprog"
)

// boundsFor filters the stack-bound table down to one test's rows.
func boundsFor(r *Report, testID string) []StackBound {
	var out []StackBound
	for _, b := range r.Stack {
		if b.Test == testID {
			out = append(out, b)
		}
	}
	return out
}

// TestSeededRecursionFlagged: the mutual ping/pong cycle is reported as
// stack/recursion with the cycle spelled out, placed at the test-layer
// call site, and the bound table records an unbounded depth on every
// derivative.
func TestSeededRecursionFlagged(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SEEDED_RECURSION", Source: testprog.SeededRecursion,
	})
	r := Check(sys, NewOptions())
	fs := findingsFor(r, "TEST_NVM_SEEDED_RECURSION")
	var recs []Finding
	for _, f := range fs {
		if f.Check == CheckStackRecursion {
			recs = append(recs, f)
		}
	}
	if len(recs) != 1 {
		t.Fatalf("stack/recursion count = %d, want 1; findings: %v", len(recs), fs)
	}
	f := recs[0]
	if !strings.Contains(f.Message, "ping -> pong -> ping") {
		t.Errorf("cycle not spelled out: %s", f.Message)
	}
	if f.Line != 10 {
		t.Errorf("finding at line %d, want 10 (pong's CALL ping)", f.Line)
	}
	if f.Variant != "" {
		t.Errorf("derivative-independent cycle carries variant %q", f.Variant)
	}
	if f.Severity != SevError {
		t.Errorf("severity = %v, want error", f.Severity)
	}
	bounds := boundsFor(r, "TEST_NVM_SEEDED_RECURSION")
	if len(bounds) != len(derivative.Family()) {
		t.Fatalf("bound rows = %d, want one per derivative", len(bounds))
	}
	for _, b := range bounds {
		if b.DepthBytes != -1 {
			t.Errorf("%s bound = %d bytes, want -1 (unbounded)", b.Derivative, b.DepthBytes)
		}
	}
}

// TestSeededUninitReadFlagged: d2 is read at the join but written on
// only one arm; the finding lands on the reading instruction in the
// test source itself (no expansion provenance).
func TestSeededUninitReadFlagged(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SEEDED_UNINIT", Source: testprog.SeededUninitRead,
	})
	r := Check(sys, NewOptions())
	fs := findingsFor(r, "TEST_NVM_SEEDED_UNINIT")
	var uninit []Finding
	for _, f := range fs {
		if f.Check == CheckUninitRead {
			uninit = append(uninit, f)
		}
	}
	if len(uninit) != 1 {
		t.Fatalf("flow/uninit-read count = %d, want 1; findings: %v", len(uninit), fs)
	}
	f := uninit[0]
	if f.Line != 8 {
		t.Errorf("finding at line %d, want 8 (the ADD that reads d2)", f.Line)
	}
	if !strings.Contains(f.Message, "register d2") {
		t.Errorf("message does not name d2: %s", f.Message)
	}
	if strings.Contains(f.Message, "expanded from") {
		t.Errorf("defect written in the test source carries expansion provenance: %s", f.Message)
	}
}

// TestSeededDeadStoreFlagged: the d5 scratch write is dead at the
// test's exit; reported as a warning at the writing instruction.
func TestSeededDeadStoreFlagged(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SEEDED_DEADSTORE", Source: testprog.SeededDeadStore,
	})
	r := Check(sys, NewOptions())
	fs := findingsFor(r, "TEST_NVM_SEEDED_DEADSTORE")
	var dead []Finding
	for _, f := range fs {
		if f.Check == CheckDeadStore {
			dead = append(dead, f)
		}
	}
	if len(dead) != 1 {
		t.Fatalf("flow/dead-store count = %d, want 1; findings: %v", len(dead), fs)
	}
	f := dead[0]
	if f.Line != 4 {
		t.Errorf("finding at line %d, want 4 (the LOAD that writes d5)", f.Line)
	}
	if !strings.Contains(f.Message, "d5") {
		t.Errorf("message does not name d5: %s", f.Message)
	}
	if f.Severity != SevWarn {
		t.Errorf("severity = %v, want warning", f.Severity)
	}
	for _, b := range boundsFor(r, "TEST_NVM_SEEDED_DEADSTORE") {
		if b.DepthBytes < 0 {
			t.Errorf("%s bound = %d, want a finite depth", b.Derivative, b.DepthBytes)
		}
		if b.DepthBytes > b.BudgetBytes {
			t.Errorf("%s depth %d exceeds budget %d on a trivial test", b.Derivative, b.DepthBytes, b.BudgetBytes)
		}
	}
}

// TestLayerCallBypassFlagged: calling a global-layer function from the
// test layer — directly or through the Figure 7 indirect idiom — is an
// object-level discipline error.
func TestLayerCallBypassFlagged(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SEEDED_BYPASS",
		Source: `;; seeded defect: calls the embedded software directly
.INCLUDE "Globals.inc"
test_main:
    CALL ES_Wdt_Service
    LOAD CallAddr, ES_Nvm_Unlock
    CALL CallAddr
    CALL Base_Report_Pass
`,
	})
	r := Check(sys, NewOptions())
	var direct, indirect []Finding
	for _, f := range findingsFor(r, "TEST_NVM_SEEDED_BYPASS") {
		if f.Check != CheckLayerCall {
			continue
		}
		if strings.Contains(f.Message, "indirectly calls") {
			indirect = append(indirect, f)
		} else {
			direct = append(direct, f)
		}
	}
	if len(direct) != 1 || !strings.Contains(direct[0].Message, "ES_Wdt_Service") || direct[0].Line != 4 {
		t.Errorf("direct bypass findings = %v, want one naming ES_Wdt_Service at line 4", direct)
	}
	if len(indirect) != 1 || !strings.Contains(indirect[0].Message, "ES_Nvm_Unlock") || indirect[0].Line != 6 {
		t.Errorf("indirect bypass findings = %v, want one naming ES_Nvm_Unlock at line 6", indirect)
	}
}

// TestExpansionProvenanceReported: when the offending instruction was
// pulled in from another file rather than written in the test source,
// the finding says so. The test jumps into code included from the
// module's Base_Functions.asm whose first reachable instruction reads
// d0, which no synchronous path initialised.
func TestExpansionProvenanceReported(t *testing.T) {
	sys := injectTest(t, content.ModuleNVM, env.TestCell{
		ID: "TEST_NVM_SEEDED_PROVENANCE",
		Source: `;; seeded defect: the uninitialised read lives in included code
.INCLUDE "Globals.inc"
test_main:
    JMP Base_Checkpoint
.INCLUDE "Base_Functions.asm"
`,
	})
	r := Check(sys, NewOptions())
	found := false
	for _, f := range findingsFor(r, "TEST_NVM_SEEDED_PROVENANCE") {
		if f.Check == CheckUninitRead && strings.Contains(f.Message, "expanded from Base_Functions.asm:") {
			found = true
		}
	}
	if !found {
		t.Errorf("no uninit-read finding with Base_Functions.asm provenance; findings: %v",
			findingsFor(r, "TEST_NVM_SEEDED_PROVENANCE"))
	}
}

// TestShippedSuiteStackBounds: every shipped test gets a bound row per
// derivative, every bound is finite, and every bound respects its
// derivative's budget.
func TestShippedSuiteStackBounds(t *testing.T) {
	r := Check(content.PortedSystem(), NewOptions())
	want := content.NumTests * len(derivative.Family())
	if len(r.Stack) != want {
		t.Fatalf("bound rows = %d, want %d (tests x derivatives)", len(r.Stack), want)
	}
	for _, b := range r.Stack {
		if b.DepthBytes < 0 {
			t.Errorf("%s/%s on %s: unbounded depth on the shipped suite", b.Module, b.Test, b.Derivative)
		}
		if b.DepthBytes > b.BudgetBytes {
			t.Errorf("%s/%s on %s: depth %d exceeds budget %d", b.Module, b.Test, b.Derivative, b.DepthBytes, b.BudgetBytes)
		}
	}
}

// FuzzCallGraph drives the whole-program call-graph construction and the
// stack-depth solver with arbitrary test sources linked against the real
// shared units: whatever the source, it must neither panic nor hang.
func FuzzCallGraph(f *testing.F) {
	s := content.PortedSystem()
	d := derivative.A()
	k := platform.KindGolden
	tree := s.Materialise(d)
	envs := s.Envs()
	e := envs[0]
	noreturn := noreturnFuncs(tree, e, d, k)
	shared := sharedUnits(tree, e, d, k)

	f.Add(testprog.SeededRecursion)
	f.Add(testprog.SeededDeadStore)
	f.Add("test_main:\n    CALL test_main\n")
	f.Add("test_main:\n    PUSH d0\nloop:\n    PUSH d1\n    JMP loop\n")
	f.Add(".INCLUDE \"Globals.inc\"\ntest_main:\n    LOAD CallAddr, ES_Wdt_Service\n    CALL CallAddr\n    RET\n")
	f.Fuzz(func(t *testing.T, src string) {
		path := e.Module + "/TEST_FUZZ/test.asm"
		o, err := assembleUnit(tree, e.Module, path, src, d, k)
		if err != nil {
			return
		}
		u, err := decodeUnit(o)
		if err != nil {
			return
		}
		tu := &cgUnitInfo{u: u, path: path, layer: layerTest, indirect: indirectTargets(u)}
		g := buildCallGraph(append([]*cgUnitInfo{tu}, shared...), noreturn)
		ds := newDepthSolver(g)
		for _, name := range g.names {
			r := ds.totalDepth(name)
			if r.depth < 0 {
				t.Fatalf("negative worst-case depth %d for %s", r.depth, name)
			}
		}
	})
}
