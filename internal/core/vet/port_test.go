package vet

import (
	"strings"
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/derivative"
	"repro/internal/obj"
	"repro/internal/platform"
)

// imagesEqual deep-compares two linked images.
func imagesEqual(a, b *obj.Image) bool {
	if a.Entry != b.Entry || a.BssAddr != b.BssAddr || a.BssSize != b.BssSize {
		return false
	}
	if len(a.Segments) != len(b.Segments) {
		return false
	}
	for i := range a.Segments {
		if a.Segments[i].Addr != b.Segments[i].Addr ||
			string(a.Segments[i].Data) != string(b.Segments[i].Data) {
			return false
		}
	}
	return true
}

// TestPortImpactMatchesDynamicDiff is the E7 cross-check: the static
// port-impact set for A->B must be exactly the set of test cells whose
// fully linked images differ between the two derivatives.
func TestPortImpactMatchesDynamicDiff(t *testing.T) {
	s := content.PortedSystem()
	from, to := derivative.A(), derivative.B()
	k := platform.KindGolden

	impacts, err := PortImpact(s, from, to, k)
	if err != nil {
		t.Fatal(err)
	}
	static := map[string]bool{}
	for _, im := range impacts {
		static[im.Module+"/"+im.Test] = true
	}

	dynamic := map[string]bool{}
	for _, e := range s.Envs() {
		for _, tc := range e.Tests() {
			ia, err := s.BuildTest(e.Module, tc.ID, from, k)
			if err != nil {
				t.Fatalf("build %s/%s on %s: %v", e.Module, tc.ID, from.Name, err)
			}
			ib, err := s.BuildTest(e.Module, tc.ID, to, k)
			if err != nil {
				t.Fatalf("build %s/%s on %s: %v", e.Module, tc.ID, to.Name, err)
			}
			if !imagesEqual(ia, ib) {
				dynamic[e.Module+"/"+tc.ID] = true
			}
		}
	}

	for cell := range dynamic {
		if !static[cell] {
			t.Errorf("image differs but static analysis missed it: %s", cell)
		}
	}
	for cell := range static {
		if !dynamic[cell] {
			t.Errorf("static analysis flagged %s but the images are identical", cell)
		}
	}
	// The A->B port moves only the NVM page-field width: Figure 6's
	// claim is that exactly the NVM module is touched.
	for cell := range static {
		if cell[:4] != "NVM/" {
			t.Errorf("A->B impact outside the NVM module: %s", cell)
		}
	}
	if len(static) == 0 {
		t.Error("A->B port impact is empty; the page-field change must touch the NVM tests")
	}
}

func TestPortImpactIdentity(t *testing.T) {
	s := content.PortedSystem()
	impacts, err := PortImpact(s, derivative.A(), derivative.A(), platform.KindGolden)
	if err != nil {
		t.Fatal(err)
	}
	if len(impacts) != 0 {
		t.Errorf("A->A impact = %v, want empty", impacts)
	}
}

func TestVariantDivergenceFindings(t *testing.T) {
	r := Check(content.PortedSystem(), NewOptions())
	want := map[string]bool{
		"PAGE_FIELD_SIZE":           false,
		"PAGE_FIELD_START_POSITION": false,
		"TIMEOUT_LOOPS":             false,
	}
	for _, f := range r.Findings {
		if f.Check != CheckVariantDiverge || f.Module != "NVM" {
			continue
		}
		if f.Severity != SevInfo {
			t.Errorf("divergence finding is %s, want info: %s", f.Severity, f)
		}
		for name := range want {
			if strings.Contains(f.Message, "symbol "+name+" ") {
				want[name] = true
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no divergence finding for %s in NVM", name)
		}
	}
}

func TestDescribeValues(t *testing.T) {
	// 2 derivatives x 3 kinds = 6 variants.
	derivs := []string{"A", "A", "A", "B", "B", "B"}
	kinds := []string{"g", "r", "s", "g", "r", "s"}
	derivOf := func(i int) string { return derivs[i] }
	kindOf := func(i int) string { return kinds[i] }

	// Derivative-controlled: collapses to derivative labels.
	got := describeValues(6, map[int]int64{0: 5, 1: 5, 2: 5, 3: 6, 4: 6, 5: 6}, derivOf, kindOf)
	if got != "0x5 on A; 0x6 on B" {
		t.Errorf("derivative collapse = %q", got)
	}
	// Kind-controlled: collapses to kind labels.
	got = describeValues(6, map[int]int64{0: 1, 1: 2, 2: 3, 3: 1, 4: 2, 5: 3}, derivOf, kindOf)
	if got != "0x1 on g; 0x2 on r; 0x3 on s" {
		t.Errorf("kind collapse = %q", got)
	}
	// Mixed: falls back to full deriv/kind labels.
	got = describeValues(6, map[int]int64{0: 1, 1: 1, 2: 1, 3: 1, 4: 1, 5: 9}, derivOf, kindOf)
	if got != "0x1 on A/g,A/r,A/s,B/g,B/r; 0x9 on B/s" {
		t.Errorf("mixed fallback = %q", got)
	}
}
