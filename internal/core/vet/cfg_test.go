package vet

import (
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/derivative"
	"repro/internal/core/env"
	"repro/internal/obj"
	"repro/internal/platform"
)

// cfgCheck runs Check on the shipped system plus one injected NVM test
// and returns that test's findings.
func cfgCheck(t *testing.T, src string) []Finding {
	t.Helper()
	sys := injectTest(t, content.ModuleNVM, env.TestCell{ID: "TEST_NVM_CFG", Source: src})
	return findingsFor(Check(sys, NewOptions()), "TEST_NVM_CFG")
}

func TestCFGCleanIdiom(t *testing.T) {
	// The shipped branch-to-fail idiom: everything reachable, epilogue on
	// both arms, no RET.
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 1
    BNE d0, d0, t_fail
    CALL Base_Report_Pass
t_fail:
    CALL Base_Report_Fail
`)
	for _, f := range fs {
		if f.Check == CheckUnreachable || f.Check == CheckFallThrough ||
			f.Check == CheckCallImbalance || f.Check == CheckNoEpilogue {
			t.Errorf("clean idiom produced CFG finding: %s", f)
		}
	}
}

func TestCFGUnreachable(t *testing.T) {
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    CALL Base_Report_Pass
never:
    LOAD d0, 1
    CALL Base_Report_Fail
`)
	got := countByCheck(fs)
	if got[CheckUnreachable] != 1 {
		t.Fatalf("unreachable count = %d, want 1; findings: %v", got[CheckUnreachable], fs)
	}
	for _, f := range fs {
		if f.Check != CheckUnreachable {
			continue
		}
		// Points at the first unreachable instruction and names the label.
		if f.Line != 5 {
			t.Errorf("unreachable finding at line %d, want 5", f.Line)
		}
		if want := "unreachable code at never"; len(f.Message) < len(want) || f.Message[:len(want)] != want {
			t.Errorf("message does not name the label: %q", f.Message)
		}
	}
}

func TestCFGAddressTakenLabelIsReachable(t *testing.T) {
	// A handler installed by materialising its address must count as a
	// CFG root even though nothing jumps to it.
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d1, my_handler
    CALL Base_Report_Pass
my_handler:
    RFE
`)
	if got := countByCheck(fs)[CheckUnreachable]; got != 0 {
		t.Errorf("address-taken handler flagged unreachable: %v", fs)
	}
}

func TestCFGFallThrough(t *testing.T) {
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 1
    LOAD d1, 2
`)
	got := countByCheck(fs)
	if got[CheckFallThrough] != 1 {
		t.Errorf("fall-through count = %d, want 1; findings: %v", got[CheckFallThrough], fs)
	}
}

func TestCFGCallImbalance(t *testing.T) {
	// A reachable RET after a reachable CALL with ra never saved
	// re-enters the callee.
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    CALL Base_Nvm_Unlock
    BNE d0, d1, t_out
    CALL Base_Report_Pass
t_out:
    RET
`)
	if got := countByCheck(fs)[CheckCallImbalance]; got != 1 {
		t.Errorf("call-imbalance count = %d, want 1; findings: %v", got, fs)
	}
	// Saving ra exonerates the RET.
	fs = cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    PUSH ra
    CALL Base_Nvm_Unlock
    POP ra
    BNE d0, d1, t_out
    CALL Base_Report_Pass
t_out:
    RET
`)
	if got := countByCheck(fs)[CheckCallImbalance]; got != 0 {
		t.Errorf("saved-ra test still flagged: %v", fs)
	}
}

func TestCFGNoEpilogue(t *testing.T) {
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 1
    HALT
`)
	if got := countByCheck(fs)[CheckNoEpilogue]; got != 1 {
		t.Errorf("no-epilogue count = %d, want 1; findings: %v", got, fs)
	}
	// A direct mailbox store is an epilogue too (the baseline idiom).
	fs = cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d15, 0x600D ; lint:disable layer/magic-value
    STORE [0x80000000], d15 ; lint:disable layer/raw-address
    HALT
`)
	if got := countByCheck(fs)[CheckNoEpilogue]; got != 0 {
		t.Errorf("mailbox-store epilogue still flagged: %v", fs)
	}
}

func TestNoreturnFixpoint(t *testing.T) {
	s := content.PortedSystem()
	d := derivative.A()
	tree := s.Materialise(d)
	e, _ := s.Env(content.ModuleNVM)
	noreturn := noreturnFuncs(tree, e, d, platform.KindGolden)
	if !noreturn["Base_Report_Pass"] || !noreturn["Base_Report_Fail"] {
		t.Errorf("reporting functions not detected noreturn: %v", noreturn)
	}
	if noreturn["Base_Nvm_Unlock"] || noreturn["Base_Nvm_Wait_Ready"] {
		t.Errorf("returning functions misclassified noreturn: %v", noreturn)
	}
}

// FuzzCFGDecode drives the CFG decoder and reachability walk with
// arbitrary text sections: it must never panic or loop, whatever bytes
// it is handed.
func FuzzCFGDecode(f *testing.F) {
	// Seed with real assembled text from the shipped suite.
	s := content.PortedSystem()
	d := derivative.A()
	tree := s.Materialise(d)
	for _, e := range s.Envs() {
		for _, t := range e.Tests() {
			o, err := assembleUnit(tree, e.Module, e.TestSourcePath(t.ID), t.Source, d, platform.KindGolden)
			if err == nil {
				f.Add(o.Text)
			}
			break // one test per module is plenty of seed variety
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00, 0x00, 0x00})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01, 0x02, 0x03})
	f.Fuzz(func(t *testing.T, text []byte) {
		u, err := decodeUnit(&obj.Object{Text: text})
		if err != nil {
			return
		}
		reached, _ := u.reach(map[string]bool{"X": true})
		if len(reached) != len(u.insts) {
			t.Fatalf("reach sized %d for %d instructions", len(reached), len(u.insts))
		}
	})
}

func TestCFGSuperblockHostile(t *testing.T) {
	// mid is address-taken (materialised into d1 for a computed jump)
	// but sits in the middle of a straight-line run: the instruction
	// before it falls through and no branch targets it, so a JI through
	// d1 would enter mid-superblock.
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 1
    LOAD d1, mid
    ADD d0, d0, 1
mid:
    ADD d0, d0, 2
    CALL Base_Report_Pass
`)
	got := countByCheck(fs)
	if got[CheckSuperblockHostile] != 1 {
		t.Fatalf("superblock-hostile count = %d, want 1; findings: %v", got[CheckSuperblockHostile], fs)
	}
	for _, f := range fs {
		if f.Check == CheckSuperblockHostile && f.Severity != SevWarn {
			t.Errorf("severity = %v, want warn", f.Severity)
		}
	}
}

func TestCFGSuperblockFriendlyTargets(t *testing.T) {
	// Address-taken labels at block-leader positions must not warn: a
	// handler placed after a CALL (block-ending) and a label that is
	// also a direct branch target are both legitimate computed-jump
	// targets.
	fs := cfgCheck(t, `.INCLUDE "Globals.inc"
test_main:
    LOAD d1, handler
    LOAD d2, looptop
    LOAD d0, 0
looptop:
    ADD d0, d0, 1
    BLT d0, d2, looptop
    CALL Base_Report_Pass
handler:
    RFE
`)
	if got := countByCheck(fs)[CheckSuperblockHostile]; got != 0 {
		t.Errorf("block-leader labels flagged superblock-hostile: %v", fs)
	}
}
