package journal

// Post-mortem analysis of a flight record: the aggregations advm-report
// renders (per-platform lanes, slowest cells, retry storms, cache
// reuse) and the trend comparison between two journals of the same
// release label. Everything here is a pure function of the records, so
// the report is as deterministic as the journal it reads.

import (
	"fmt"
	"sort"
)

// Analysis is the digested form of one journal.
type Analysis struct {
	// Header is the run header (zero if the journal is headless — e.g.
	// truncated by a crash before the first record).
	Header Record
	// End is the closing record; HasEnd reports whether the run closed
	// cleanly (a crashed matrix leaves a journal without one — the
	// flight-recorder case the format exists for).
	End    Record
	HasEnd bool
	// Outcomes are the cell outcome records in journal order.
	Outcomes []Record
	// Schedule is the planned dispatch order (cell IDs).
	Schedule []string
	// Retries are the retry records in journal order.
	Retries []Record
	// Breakers are the breaker-transition records in journal order.
	Breakers []Record
	// TriageRefs maps cell ID to its triage reference.
	TriageRefs map[string]string
	// CacheHits counts run-cache-served cells; QuarantineSkips the cells
	// benched by the quarantine store.
	CacheHits       int
	QuarantineSkips int
	// MaxGoroutines, MaxHeapBytes and MaxGCPauseNs are the peaks over
	// the runtime samples (zero when none were recorded).
	MaxGoroutines int64
	MaxHeapBytes  int64
	MaxGCPauseNs  int64
	// attempts maps cell ID to the outcome's attempt count.
	attempts map[string]int
}

// Analyze digests a record stream.
func Analyze(recs []Record) *Analysis {
	a := &Analysis{TriageRefs: map[string]string{}, attempts: map[string]int{}}
	for _, r := range recs {
		switch r.Kind {
		case KindHeader:
			a.Header = r
		case KindSchedule:
			a.Schedule = append(a.Schedule, r.CellID())
		case KindOutcome:
			a.Outcomes = append(a.Outcomes, r)
			a.attempts[r.CellID()] = r.Attempt
		case KindRetry:
			a.Retries = append(a.Retries, r)
		case KindBreaker:
			a.Breakers = append(a.Breakers, r)
		case KindCacheHit:
			a.CacheHits++
		case KindQuarantine:
			a.QuarantineSkips++
		case KindTriage:
			a.TriageRefs[r.CellID()] = r.Ref
		case KindRuntime:
			if r.Goroutines > a.MaxGoroutines {
				a.MaxGoroutines = r.Goroutines
			}
			if r.HeapBytes > a.MaxHeapBytes {
				a.MaxHeapBytes = r.HeapBytes
			}
			if r.GCPauseNs > a.MaxGCPauseNs {
				a.MaxGCPauseNs = r.GCPauseNs
			}
		case KindEnd:
			a.End = r
			a.HasEnd = true
		}
	}
	return a
}

// Counts tallies the outcome statuses (flaky is a refinement of
// failed, matching regress.Report.Counts).
func (a *Analysis) Counts() (passed, failed, broken, flaky int) {
	for _, o := range a.Outcomes {
		switch o.Status {
		case StatusPassed:
			passed++
		case StatusBroken:
			broken++
		case StatusFlaky:
			failed++
			flaky++
		default:
			failed++
		}
	}
	return
}

// PlatformLane aggregates one platform's cells.
type PlatformLane struct {
	Platform string
	Cells    int
	Passed   int
	Failed   int
	Broken   int
	Flaky    int
	Cached   int
	Retries  int
	BuildNs  int64
	RunNs    int64
	// FirstNs/LastNs bound the platform's outcome offsets — the lane's
	// extent on the run's time axis.
	FirstNs int64
	LastNs  int64
}

// Lanes aggregates outcomes per platform, sorted by total run time
// descending (the busiest lane first), ties by name.
func (a *Analysis) Lanes() []PlatformLane {
	acc := map[string]*PlatformLane{}
	for _, o := range a.Outcomes {
		l, ok := acc[o.Platform]
		if !ok {
			l = &PlatformLane{Platform: o.Platform, FirstNs: o.T}
			acc[o.Platform] = l
		}
		l.Cells++
		switch o.Status {
		case StatusPassed:
			l.Passed++
		case StatusBroken:
			l.Broken++
		case StatusFlaky:
			l.Failed++
			l.Flaky++
		default:
			l.Failed++
		}
		if o.Cached {
			l.Cached++
		}
		if o.Attempt > 1 {
			l.Retries += o.Attempt - 1
		}
		l.BuildNs += o.BuildNs
		l.RunNs += o.RunNs
		start := o.T - o.BuildNs - o.RunNs
		if start < l.FirstNs {
			l.FirstNs = start
		}
		if o.T > l.LastNs {
			l.LastNs = o.T
		}
	}
	out := make([]PlatformLane, 0, len(acc))
	for _, l := range acc {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RunNs != out[j].RunNs {
			return out[i].RunNs > out[j].RunNs
		}
		return out[i].Platform < out[j].Platform
	})
	return out
}

// Slowest returns the n outcomes with the largest run time, slowest
// first (ties broken by cell ID for determinism). Cached outcomes are
// excluded — their "run time" is a cache lookup.
func (a *Analysis) Slowest(n int) []Record {
	var live []Record
	for _, o := range a.Outcomes {
		if !o.Cached {
			live = append(live, o)
		}
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].RunNs != live[j].RunNs {
			return live[i].RunNs > live[j].RunNs
		}
		return live[i].CellID() < live[j].CellID()
	})
	if n > 0 && len(live) > n {
		live = live[:n]
	}
	return live
}

// Storm is one cell's retry history.
type Storm struct {
	Cell      string
	Attempts  int
	BackoffNs int64
	Status    string
}

// RetryStorms lists the cells that needed more than one attempt, worst
// first (most attempts, then most backoff, then cell ID).
func (a *Analysis) RetryStorms() []Storm {
	backoff := map[string]int64{}
	for _, r := range a.Retries {
		backoff[r.CellID()] += r.BackoffNs
	}
	var out []Storm
	for _, o := range a.Outcomes {
		if o.Attempt > 1 {
			out = append(out, Storm{
				Cell: o.CellID(), Attempts: o.Attempt,
				BackoffNs: backoff[o.CellID()], Status: o.Status,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attempts != out[j].Attempts {
			return out[i].Attempts > out[j].Attempts
		}
		if out[i].BackoffNs != out[j].BackoffNs {
			return out[i].BackoffNs > out[j].BackoffNs
		}
		return out[i].Cell < out[j].Cell
	})
	return out
}

// CacheSummary renders the end record's cache totals as one line, or
// "" when the journal has no end record.
func (a *Analysis) CacheSummary() string {
	if !a.HasEnd {
		return ""
	}
	e := a.End
	line := func(hits, misses uint64) string {
		total := hits + misses
		if total == 0 {
			return "off"
		}
		return fmt.Sprintf("%d/%d hits (%.1f%% reuse)", hits, total, float64(hits)/float64(total)*100)
	}
	out := "build " + line(e.BuildHits, e.BuildMiss) + ", run " + line(e.RunHits, e.RunMiss)
	if e.RunBypass > 0 {
		out += fmt.Sprintf(", %d bypassed", e.RunBypass)
	}
	return out
}

// TrendRow compares one platform between two runs.
type TrendRow struct {
	Platform  string
	RunNs     int64
	PrevRunNs int64
	Passed    int
	PrevPass  int
}

// Trend compares this analysis against a previous run of the same
// release label: per-platform run-time and pass-count deltas plus the
// cells that regressed (now failing, passed before) and recovered. If
// the labels differ the comparison is still computed — the caller
// decides whether cross-label trends mean anything — but SameLabel
// reports the mismatch.
type Trend struct {
	SameLabel bool
	Rows      []TrendRow
	// Regressed cells passed in prev and do not pass now; Recovered the
	// reverse. Both sorted.
	Regressed []string
	Recovered []string
}

// TrendVs computes the trend of a (current) versus prev.
func (a *Analysis) TrendVs(prev *Analysis) *Trend {
	t := &Trend{SameLabel: a.Header.Label == prev.Header.Label}
	cur := map[string]*TrendRow{}
	for _, l := range a.Lanes() {
		cur[l.Platform] = &TrendRow{Platform: l.Platform, RunNs: l.RunNs, Passed: l.Passed}
	}
	for _, l := range prev.Lanes() {
		r, ok := cur[l.Platform]
		if !ok {
			r = &TrendRow{Platform: l.Platform}
			cur[l.Platform] = r
		}
		r.PrevRunNs = l.RunNs
		r.PrevPass = l.Passed
	}
	for _, r := range cur {
		t.Rows = append(t.Rows, *r)
	}
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Platform < t.Rows[j].Platform })

	status := func(an *Analysis) map[string]bool {
		m := map[string]bool{}
		for _, o := range an.Outcomes {
			m[o.CellID()] = o.Status == StatusPassed
		}
		return m
	}
	now, was := status(a), status(prev)
	for cell, passed := range now {
		if wasPassed, seen := was[cell]; seen && wasPassed && !passed {
			t.Regressed = append(t.Regressed, cell)
		}
	}
	for cell, wasPassed := range was {
		if nowPassed, seen := now[cell]; seen && !wasPassed && nowPassed {
			t.Recovered = append(t.Recovered, cell)
		}
	}
	sort.Strings(t.Regressed)
	sort.Strings(t.Recovered)
	return t
}
