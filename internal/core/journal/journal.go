// Package journal is the flight recorder of the regression matrix: an
// append-only, structured JSONL record of everything one matrix run did
// — a run header carrying the frozen release label and content epoch,
// then one record per cell event (schedule, start, retry, breaker
// transition, quarantine skip, cache hit, outcome, triage reference,
// runtime sample) and a closing end record with the verdict counts and
// cache totals.
//
// The journal is the persistence half of the observability layer: the
// in-process telemetry substrate (internal/core/telemetry) answers "what
// is the process doing right now", the journal answers "what did that
// run do" after the process is gone, across runs, and across machines.
// cmd/advm-report renders a journal into a report; the live -progress
// board of advm-regress is fed by the same records through the Sink
// interface, so the file format and the live view can never drift.
//
// Determinism: every record is stamped with a monotonic offset from the
// run start (t_ns) and wall-clock durations, but those are the only
// host-dependent fields. Mask strips them and re-encodes each line
// canonically, so two serial runs of the same frozen spec produce
// byte-identical masked journals — the property the E17 acceptance test
// enforces. The package is a leaf: it imports only the standard library.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Version is the journal format version stamped into header records.
const Version = 1

// Kind enumerates the record types.
type Kind string

// Record kinds.
const (
	// KindHeader opens a journal: format version, release label, content
	// epoch, matrix shape (cells, workers, engine), and the wall-clock
	// start time.
	KindHeader Kind = "header"
	// KindSchedule announces one cell in dispatch order, before any cell
	// runs — the scheduler's plan, written down so a report (or the E17
	// test) can audit the longest-expected-job-first order.
	KindSchedule Kind = "schedule"
	// KindStart marks one attempt of a cell beginning to build+run.
	KindStart Kind = "start"
	// KindRetry marks a transient fault about to be retried; BackoffNs is
	// the policy's planned (seeded, deterministic) backoff.
	KindRetry Kind = "retry"
	// KindBreaker marks a circuit-breaker state transition on a platform
	// kind (From/To are automaton state names).
	KindBreaker Kind = "breaker"
	// KindQuarantine marks a cell skipped because earlier regressions
	// benched it as chronically flaky.
	KindQuarantine Kind = "quarantine-skip"
	// KindCacheHit marks a cell served from the run cache instead of
	// being simulated.
	KindCacheHit Kind = "cache-hit"
	// KindOutcome closes one cell: status, stop reason, counters, and the
	// accumulated build/run/backoff times.
	KindOutcome Kind = "outcome"
	// KindTriage references the first-divergence artifact of a failing
	// cell (Ref is the one-line summary, or the artifact path when the
	// matrix writes triage files).
	KindTriage Kind = "triage"
	// KindRuntime is a Go-runtime health sample (goroutines, heap, GC
	// pause), taken at matrix start/end and periodically between
	// outcomes.
	KindRuntime Kind = "runtime"
	// KindEnd closes a journal: verdict counts, wall time, and the
	// build/run cache totals.
	KindEnd Kind = "end"
)

// Outcome status values (Record.Status).
const (
	StatusPassed = "passed"
	StatusFailed = "failed"
	StatusFlaky  = "flaky"
	StatusBroken = "broken"
)

// Record is one journal line. It is a flat union over every record
// kind: unused fields are omitted from the JSON, so each line carries
// only its kind's payload. Fields named *_ns plus Wall, Goroutines and
// HeapBytes are host wall-clock or process state, and Seq, Workers and
// the cache totals are execution shape (how the matrix was sharded,
// not what it concluded); Mask strips them all. Everything else is a
// deterministic function of the frozen spec.
type Record struct {
	Kind Kind   `json:"kind"`
	Seq  uint64 `json:"seq"`
	// T is the monotonic offset from the journal's start, in
	// nanoseconds. Stamped by the Writer, not the caller.
	T int64 `json:"t_ns,omitempty"`

	// Header fields.
	Version int    `json:"version,omitempty"`
	Label   string `json:"label,omitempty"`
	Epoch   string `json:"epoch,omitempty"`
	Workers int    `json:"workers,omitempty"`
	Cells   int    `json:"cells,omitempty"`
	Engine  string `json:"engine,omitempty"`
	Wall    string `json:"wall,omitempty"`

	// Cell coordinates (schedule/start/retry/cache-hit/outcome/triage).
	Module   string `json:"module,omitempty"`
	Test     string `json:"test,omitempty"`
	Deriv    string `json:"deriv,omitempty"`
	Platform string `json:"platform,omitempty"`
	Attempt  int    `json:"attempt,omitempty"`

	// Retry and breaker fields.
	Class     string `json:"class,omitempty"`
	BackoffNs int64  `json:"backoff_ns,omitempty"`
	From      string `json:"from,omitempty"`
	To        string `json:"to,omitempty"`

	// Outcome fields.
	Status   string `json:"status,omitempty"`
	Reason   string `json:"reason,omitempty"`
	BuildErr string `json:"build_err,omitempty"`
	Cycles   uint64 `json:"cycles,omitempty"`
	Insts    uint64 `json:"insts,omitempty"`
	BuildNs  int64  `json:"build_ns,omitempty"`
	RunNs    int64  `json:"run_ns,omitempty"`
	Cached   bool   `json:"cached,omitempty"`

	// Triage reference.
	Ref string `json:"ref,omitempty"`

	// Runtime sample fields.
	Goroutines int64 `json:"goroutines,omitempty"`
	HeapBytes  int64 `json:"heap_bytes,omitempty"`
	GCPauseNs  int64 `json:"gc_pause_ns,omitempty"`

	// End fields.
	Passed     int    `json:"passed,omitempty"`
	Failed     int    `json:"failed,omitempty"`
	Broken     int    `json:"broken,omitempty"`
	Flaky      int    `json:"flaky,omitempty"`
	WallNs     int64  `json:"wall_ns,omitempty"`
	BuildHits  uint64 `json:"build_hits,omitempty"`
	BuildMiss  uint64 `json:"build_misses,omitempty"`
	RunHits    uint64 `json:"run_hits,omitempty"`
	RunMiss    uint64 `json:"run_misses,omitempty"`
	RunBypass  uint64 `json:"run_bypassed,omitempty"`
	Quarantine int    `json:"quarantined,omitempty"`
}

// CellID names the cell a record belongs to, in the resilience CellKey
// format (module/test@deriv/platform); empty for non-cell records.
func (r Record) CellID() string {
	if r.Module == "" {
		return ""
	}
	return r.Module + "/" + r.Test + "@" + r.Deriv + "/" + r.Platform
}

// Sink receives journal records. The regression runner emits into a
// Sink so a file writer, the live progress board, and tests all consume
// the identical stream. Implementations must be safe for concurrent use
// — matrix workers emit from their own goroutines.
type Sink interface {
	Emit(Record)
}

// SinkFunc adapts a function to a Sink.
type SinkFunc func(Record)

// Emit implements Sink.
func (f SinkFunc) Emit(r Record) { f(r) }

// Tee fans one record stream out to several sinks in order. Nil sinks
// are skipped; a tee over zero live sinks is a valid no-op sink.
func Tee(sinks ...Sink) Sink {
	var live []Sink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	return tee(live)
}

type tee []Sink

func (t tee) Emit(r Record) {
	for _, s := range t {
		s.Emit(r)
	}
}

// Writer appends records to an io.Writer as JSONL, one record per
// line, flushed after every record — the journal survives a crashed or
// killed matrix up to the last completed event, which is the whole
// point of a flight recorder. The Writer stamps Seq and T (monotonic
// offset from NewWriter); callers fill everything else. All methods
// are safe for concurrent use and nil-safe.
type Writer struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	start time.Time
	seq   uint64
	err   error
}

// NewWriter creates a journal writer over w. The monotonic clock
// starts now.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w), start: time.Now()}
}

// Emit implements Sink: stamps, encodes, writes, and flushes one
// record. The first write error is latched and reported by Close.
func (w *Writer) Emit(r Record) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	r.Seq = w.seq
	r.T = time.Since(w.start).Nanoseconds()
	data, err := json.Marshal(r)
	if err != nil {
		// A Record is a plain struct of marshalable fields; an error here
		// is programmer error, but latch it rather than panic a worker.
		w.setErr(err)
		return
	}
	if _, err := w.bw.Write(append(data, '\n')); err != nil {
		w.setErr(err)
		return
	}
	w.setErr(w.bw.Flush())
}

func (w *Writer) setErr(err error) {
	if w.err == nil && err != nil {
		w.err = err
	}
}

// Count reports how many records were emitted.
func (w *Writer) Count() uint64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Close flushes and returns the first write error, if any. It does not
// close the underlying writer (the caller owns the file).
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.setErr(w.bw.Flush())
	return w.err
}

// Read parses a JSONL journal back into records. Blank lines are
// skipped; a malformed line is an error naming its line number.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("journal: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return out, nil
}

// ReadFile is Read over a file's contents.
func ReadFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data))
}

// volatileKeys are the JSON fields that depend on host wall-clock,
// process state, or execution shape rather than on the frozen spec:
// Mask deletes them. Execution-shape fields (seq, workers, and the
// cache totals) joined the set with the sharded matrix: a cell's
// verdict is spec-determined, but which worker process ran it, how
// records interleaved with dropped runtime samples, and which tier a
// build was served from are not — a sharded run and a serial run of
// the same frozen spec must mask to identical bytes.
var volatileKeys = []string{
	"t_ns", "wall", "wall_ns",
	"build_ns", "run_ns", "backoff_ns",
	"goroutines", "heap_bytes", "gc_pause_ns",
	"seq", "workers",
	"build_hits", "build_misses", "run_hits", "run_misses", "run_bypassed",
}

// Mask strips the volatile fields from a JSONL journal, drops the
// runtime-sample records entirely (they describe the host, and their
// cadence — every 32nd outcome per process — depends on how the matrix
// was sharded), and re-encodes each surviving line canonically (sorted
// keys). Two serial runs of the same frozen spec produce byte-identical
// Mask output, and so do a serial run and a sharded multi-process run
// dispatching in the same order — the determinism contracts the E17 and
// E19 acceptance tests enforce, and the form trend comparisons should
// diff.
func Mask(data []byte) ([]byte, error) {
	var out bytes.Buffer
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("journal: mask: line %d: %w", line, err)
		}
		if m["kind"] == string(KindRuntime) {
			continue
		}
		for _, k := range volatileKeys {
			delete(m, k)
		}
		enc, err := json.Marshal(m) // map keys marshal sorted: canonical
		if err != nil {
			return nil, fmt.Errorf("journal: mask: line %d: %w", line, err)
		}
		out.Write(enc)
		out.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("journal: mask: %w", err)
	}
	return out.Bytes(), nil
}

// Resequence renumbers a merged record stream with a fresh monotonic
// Seq, 1..n in slice order. A sharded matrix produces one record
// sub-stream per worker process, each with its own worker-local
// sequence; after the daemon's client merges them — schedule records in
// dispatch order, per-cell groups in dispatch order, each group's
// records in its worker's emission order (the worker-local Seq is the
// tiebreak that makes the merge deterministic) — Resequence restores
// the journal invariant that Seq increases line by line. The input is
// not mutated.
func Resequence(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		r.Seq = uint64(i + 1)
		out[i] = r
	}
	return out
}
