package journal

// Report rendering: the text and self-contained-HTML forms of an
// Analysis, shared by cmd/advm-report. The HTML report inlines its CSS
// and uses no scripts, so a single file attached to a CI run opens
// anywhere.

import (
	"fmt"
	"html/template"
	"io"
	"sort"
	"strings"
	"time"
)

// ReportOptions tunes rendering.
type ReportOptions struct {
	// Top bounds the slowest-cells table (default 10).
	Top int
	// Prev, when non-nil, adds the trend section against a previous
	// journal of the same release label.
	Prev *Analysis
	// Estimate, when non-nil, annotates slowest cells with the history
	// store's expected time for the cell (historical mean, run count).
	Estimate func(cellID string) (ns int64, runs int, ok bool)
}

func (o ReportOptions) top() int {
	if o.Top <= 0 {
		return 10
	}
	return o.Top
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WriteText renders the analysis as a plain-text report.
func WriteText(w io.Writer, a *Analysis, opts ReportOptions) error {
	var b strings.Builder
	h := a.Header
	fmt.Fprintf(&b, "flight record: label=%s epoch=%.12s cells=%d workers=%d engine=%s\n",
		h.Label, h.Epoch, h.Cells, h.Workers, h.Engine)
	p, f, br, fl := a.Counts()
	verdict := fmt.Sprintf("verdict: %d passed, %d failed", p, f)
	if fl > 0 {
		verdict += fmt.Sprintf(" (%d flaky)", fl)
	}
	verdict += fmt.Sprintf(", %d broken", br)
	if a.HasEnd {
		verdict += fmt.Sprintf(" — wall %s", time.Duration(a.End.WallNs).Round(time.Millisecond))
	} else {
		verdict += " — journal has no end record (matrix did not close cleanly)"
	}
	fmt.Fprintln(&b, verdict)

	fmt.Fprintf(&b, "\nper-platform lanes:\n")
	fmt.Fprintf(&b, "  %-10s %5s %5s %5s %6s %6s %6s %7s %10s %10s\n",
		"platform", "cells", "pass", "fail", "broken", "flaky", "cached", "retries", "build_ms", "run_ms")
	for _, l := range a.Lanes() {
		fmt.Fprintf(&b, "  %-10s %5d %5d %5d %6d %6d %6d %7d %10.1f %10.1f\n",
			l.Platform, l.Cells, l.Passed, l.Failed, l.Broken, l.Flaky, l.Cached, l.Retries,
			ms(l.BuildNs), ms(l.RunNs))
	}

	slow := a.Slowest(opts.top())
	if len(slow) > 0 {
		fmt.Fprintf(&b, "\nslowest cells (top %d):\n", len(slow))
		for _, o := range slow {
			fmt.Fprintf(&b, "  %10.1f ms  %-8s %s", ms(o.RunNs), o.Status, o.CellID())
			if opts.Estimate != nil {
				if est, runs, ok := opts.Estimate(o.CellID()); ok {
					fmt.Fprintf(&b, "  (history: %.1f ms over %d runs)", ms(est), runs)
				}
			}
			b.WriteByte('\n')
		}
	}

	if storms := a.RetryStorms(); len(storms) > 0 {
		fmt.Fprintf(&b, "\nretry storms:\n")
		for _, s := range storms {
			fmt.Fprintf(&b, "  %d attempts (%s backoff) -> %-8s %s\n",
				s.Attempts, time.Duration(s.BackoffNs).Round(time.Millisecond), s.Status, s.Cell)
		}
	}
	if len(a.Breakers) > 0 {
		fmt.Fprintf(&b, "\nbreaker transitions:\n")
		for _, r := range a.Breakers {
			fmt.Fprintf(&b, "  %-10s %s -> %s\n", r.Platform, r.From, r.To)
		}
	}
	if len(a.TriageRefs) > 0 {
		fmt.Fprintf(&b, "\ntriage:\n")
		for _, cell := range sortedKeys(a.TriageRefs) {
			fmt.Fprintf(&b, "  %s: %s\n", cell, a.TriageRefs[cell])
		}
	}
	if a.QuarantineSkips > 0 {
		fmt.Fprintf(&b, "\nquarantine: %d cells skipped\n", a.QuarantineSkips)
	}
	if cs := a.CacheSummary(); cs != "" {
		fmt.Fprintf(&b, "\ncache reuse: %s\n", cs)
	}
	if a.MaxGoroutines > 0 || a.MaxHeapBytes > 0 {
		fmt.Fprintf(&b, "runtime peaks: %d goroutines, heap %.1f MiB, max GC pause %s\n",
			a.MaxGoroutines, float64(a.MaxHeapBytes)/(1<<20),
			time.Duration(a.MaxGCPauseNs).Round(time.Microsecond))
	}

	if opts.Prev != nil {
		t := a.TrendVs(opts.Prev)
		fmt.Fprintf(&b, "\ntrend vs previous journal")
		if !t.SameLabel {
			fmt.Fprintf(&b, " (WARNING: labels differ: %s vs %s)", h.Label, opts.Prev.Header.Label)
		}
		fmt.Fprintln(&b, ":")
		fmt.Fprintf(&b, "  %-10s %12s %12s %9s %11s\n", "platform", "run_ms", "prev_ms", "delta_%", "pass_delta")
		for _, r := range t.Rows {
			delta := "n/a"
			if r.PrevRunNs > 0 {
				delta = fmt.Sprintf("%+.1f", (float64(r.RunNs)/float64(r.PrevRunNs)-1)*100)
			}
			fmt.Fprintf(&b, "  %-10s %12.1f %12.1f %9s %+11d\n",
				r.Platform, ms(r.RunNs), ms(r.PrevRunNs), delta, r.Passed-r.PrevPass)
		}
		for _, c := range t.Regressed {
			fmt.Fprintf(&b, "  regressed: %s\n", c)
		}
		for _, c := range t.Recovered {
			fmt.Fprintf(&b, "  recovered: %s\n", c)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// htmlReport is the template input.
type htmlReport struct {
	Header    Record
	Verdict   string
	Lanes     []htmlLane
	Slowest   []htmlSlow
	Storms    []Storm
	Breakers  []Record
	Triage    []htmlTriage
	Cache     string
	Runtime   string
	Trend     *Trend
	TrendWarn string
}

type htmlLane struct {
	PlatformLane
	BuildMs, RunMs float64
	Bars           []htmlBar
}

// htmlBar is one cell rendered on its platform lane: offset and width
// as percentages of the run's wall extent.
type htmlBar struct {
	LeftPct, WidthPct float64
	Class             string
	Title             string
}

type htmlTriage struct {
	Cell, Ref string
}

type htmlSlow struct {
	Cell    string
	Status  string
	RunMs   float64
	History string
}

var htmlTmpl = template.Must(template.New("report").Funcs(template.FuncMap{
	"msf": func(ns int64) float64 { return ms(ns) },
	"sub": func(a, b int) int { return a - b },
}).Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>advm matrix report — {{.Header.Label}}</title>
<style>
body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:72rem;padding:0 1rem;color:#222}
h1{font-size:1.3rem} h2{font-size:1.05rem;margin-top:1.6rem}
table{border-collapse:collapse;margin:.5rem 0} td,th{padding:.15rem .6rem;text-align:right;border-bottom:1px solid #eee}
th{border-bottom:1px solid #999} td:first-child,th:first-child{text-align:left}
.lane{position:relative;height:14px;background:#f3f3f3;border-radius:3px;margin:2px 0;min-width:30rem}
.lane div{position:absolute;top:1px;bottom:1px;border-radius:2px;min-width:2px}
.passed{background:#4a8f4a}.failed{background:#c0392b}.flaky{background:#d98e04}.broken{background:#777}
.mono{font-family:ui-monospace,monospace;font-size:12px}
.warn{color:#c0392b}
</style></head><body>
<h1>advm matrix flight record — {{.Header.Label}}</h1>
<p class="mono">epoch {{printf "%.12s" .Header.Epoch}} · {{.Header.Cells}} cells · {{.Header.Workers}} workers · engine {{.Header.Engine}}</p>
<p><strong>{{.Verdict}}</strong></p>

<h2>Per-platform lanes</h2>
<table><tr><th>platform</th><th>cells</th><th>pass</th><th>fail</th><th>broken</th><th>flaky</th><th>cached</th><th>retries</th><th>build ms</th><th>run ms</th><th style="text-align:left">timeline</th></tr>
{{range .Lanes}}<tr><td>{{.Platform}}</td><td>{{.Cells}}</td><td>{{.Passed}}</td><td>{{.Failed}}</td><td>{{.Broken}}</td><td>{{.Flaky}}</td><td>{{.Cached}}</td><td>{{.Retries}}</td><td>{{printf "%.1f" .BuildMs}}</td><td>{{printf "%.1f" .RunMs}}</td>
<td><div class="lane">{{range .Bars}}<div class="{{.Class}}" style="left:{{printf "%.2f" .LeftPct}}%;width:{{printf "%.2f" .WidthPct}}%" title="{{.Title}}"></div>{{end}}</div></td></tr>
{{end}}</table>

{{if .Slowest}}<h2>Slowest cells</h2>
<table><tr><th>run ms</th><th>status</th><th style="text-align:left">cell</th><th style="text-align:left">history</th></tr>
{{range .Slowest}}<tr><td>{{printf "%.1f" .RunMs}}</td><td>{{.Status}}</td><td class="mono" style="text-align:left">{{.Cell}}</td><td style="text-align:left">{{.History}}</td></tr>
{{end}}</table>{{end}}

{{if .Storms}}<h2>Retry storms</h2>
<table><tr><th>attempts</th><th>status</th><th style="text-align:left">cell</th></tr>
{{range .Storms}}<tr><td>{{.Attempts}}</td><td>{{.Status}}</td><td class="mono" style="text-align:left">{{.Cell}}</td></tr>
{{end}}</table>{{end}}

{{if .Breakers}}<h2>Breaker transitions</h2>
<table><tr><th style="text-align:left">platform</th><th>from</th><th>to</th></tr>
{{range .Breakers}}<tr><td>{{.Platform}}</td><td>{{.From}}</td><td>{{.To}}</td></tr>
{{end}}</table>{{end}}

{{if .Triage}}<h2>Triage</h2>
<table><tr><th style="text-align:left">cell</th><th style="text-align:left">first divergence</th></tr>
{{range .Triage}}<tr><td class="mono" style="text-align:left">{{.Cell}}</td><td class="mono" style="text-align:left">{{.Ref}}</td></tr>
{{end}}</table>{{end}}

{{if .Cache}}<h2>Cache reuse</h2><p>{{.Cache}}</p>{{end}}
{{if .Runtime}}<p>{{.Runtime}}</p>{{end}}

{{if .Trend}}<h2>Trend vs previous journal</h2>
{{if .TrendWarn}}<p class="warn">{{.TrendWarn}}</p>{{end}}
<table><tr><th style="text-align:left">platform</th><th>run ms</th><th>prev ms</th><th>pass Δ</th></tr>
{{range .Trend.Rows}}<tr><td>{{.Platform}}</td><td>{{printf "%.1f" (msf .RunNs)}}</td><td>{{printf "%.1f" (msf .PrevRunNs)}}</td><td>{{printf "%+d" (sub .Passed .PrevPass)}}</td></tr>
{{end}}</table>
{{range .Trend.Regressed}}<p class="warn mono">regressed: {{.}}</p>{{end}}
{{range .Trend.Recovered}}<p class="mono">recovered: {{.}}</p>{{end}}
{{end}}
</body></html>
`))

// WriteHTML renders the analysis as a self-contained HTML report.
func WriteHTML(w io.Writer, a *Analysis, opts ReportOptions) error {
	rep := htmlReport{Header: a.Header}
	p, f, br, fl := a.Counts()
	rep.Verdict = fmt.Sprintf("%d passed, %d failed", p, f)
	if fl > 0 {
		rep.Verdict += fmt.Sprintf(" (%d flaky)", fl)
	}
	rep.Verdict += fmt.Sprintf(", %d broken", br)
	if a.HasEnd {
		rep.Verdict += fmt.Sprintf(" — wall %s", time.Duration(a.End.WallNs).Round(time.Millisecond))
	}

	// The time axis for the lane bars: the last outcome offset.
	var extent int64 = 1
	for _, o := range a.Outcomes {
		if o.T > extent {
			extent = o.T
		}
	}
	barsByPlat := map[string][]htmlBar{}
	for _, o := range a.Outcomes {
		class := o.Status
		if class == "" {
			class = StatusBroken
		}
		start := o.T - o.BuildNs - o.RunNs
		if start < 0 {
			start = 0
		}
		barsByPlat[o.Platform] = append(barsByPlat[o.Platform], htmlBar{
			LeftPct:  float64(start) / float64(extent) * 100,
			WidthPct: float64(o.BuildNs+o.RunNs) / float64(extent) * 100,
			Class:    class,
			Title:    fmt.Sprintf("%s — %s, %.1f ms", o.CellID(), class, ms(o.BuildNs+o.RunNs)),
		})
	}
	for _, l := range a.Lanes() {
		rep.Lanes = append(rep.Lanes, htmlLane{
			PlatformLane: l,
			BuildMs:      ms(l.BuildNs), RunMs: ms(l.RunNs),
			Bars: barsByPlat[l.Platform],
		})
	}
	for _, o := range a.Slowest(opts.top()) {
		hs := htmlSlow{Cell: o.CellID(), Status: o.Status, RunMs: ms(o.RunNs)}
		if opts.Estimate != nil {
			if est, runs, ok := opts.Estimate(o.CellID()); ok {
				hs.History = fmt.Sprintf("%.1f ms over %d runs", ms(est), runs)
			}
		}
		rep.Slowest = append(rep.Slowest, hs)
	}
	rep.Storms = a.RetryStorms()
	rep.Breakers = a.Breakers
	for _, cell := range sortedKeys(a.TriageRefs) {
		rep.Triage = append(rep.Triage, htmlTriage{Cell: cell, Ref: a.TriageRefs[cell]})
	}
	rep.Cache = a.CacheSummary()
	if a.MaxGoroutines > 0 || a.MaxHeapBytes > 0 {
		rep.Runtime = fmt.Sprintf("Runtime peaks: %d goroutines, heap %.1f MiB, max GC pause %s.",
			a.MaxGoroutines, float64(a.MaxHeapBytes)/(1<<20),
			time.Duration(a.MaxGCPauseNs).Round(time.Microsecond))
	}
	if opts.Prev != nil {
		rep.Trend = a.TrendVs(opts.Prev)
		if !rep.Trend.SameLabel {
			rep.TrendWarn = fmt.Sprintf("Labels differ: %s vs %s — cross-label trends compare different frozen content.",
				a.Header.Label, opts.Prev.Header.Label)
		}
	}
	return htmlTmpl.Execute(w, rep)
}
