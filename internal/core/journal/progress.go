package journal

// The live progress board: an in-place terminal status line rendered
// from the same record stream the flight recorder persists. advm-regress
// wires it as a second Sink behind Tee, so what you watch and what the
// journal file says are one stream by construction.
//
// Stream discipline: the board writes only to its status writer
// (stderr in advm-regress) using carriage-return redraws, and routes
// one-off log lines (verbose cell failures) through Logf, which erases
// the status line, writes the log line to the separate log writer
// (stdout), and redraws — so progress and cell logs interleave cleanly
// on a terminal where both streams share the tty.

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Progress renders a matrix run as an in-place status line. Create
// with NewProgress; all methods are safe for concurrent use.
type Progress struct {
	mu  sync.Mutex
	out io.Writer // status line (carriage-return redraws)
	log io.Writer // Logf lines; nil falls back to out

	// Estimate, when set, supplies the history store's expected
	// build+run time for a cell, enabling a work-weighted ETA.
	estimate func(module, test, deriv, platform string) (int64, bool)

	start    time.Time
	total    int
	workers  int
	done     int
	passed   int
	failed   int
	broken   int
	flaky    int
	retries  int
	cached   int
	skipped  int // quarantine
	inflight map[string]int // platform -> cells currently running
	started  map[string]bool

	remainNs  int64            // summed estimates of scheduled, unfinished cells
	estimated map[string]int64 // cellID -> estimate

	lastDraw time.Time
	drawn    bool
	closed   bool
}

// NewProgress creates a progress board writing its status line to out.
func NewProgress(out io.Writer) *Progress {
	return &Progress{
		out:       out,
		start:     time.Now(),
		inflight:  map[string]int{},
		started:   map[string]bool{},
		estimated: map[string]int64{},
	}
}

// SetLogWriter routes Logf lines to w (advm-regress passes stdout so
// cell logs and the status line live on separate streams).
func (p *Progress) SetLogWriter(w io.Writer) {
	p.mu.Lock()
	p.log = w
	p.mu.Unlock()
}

// SetEstimator installs a per-cell expected-time source (the history
// store) for the ETA.
func (p *Progress) SetEstimator(f func(module, test, deriv, platform string) (int64, bool)) {
	p.mu.Lock()
	p.estimate = f
	p.mu.Unlock()
}

// Emit implements Sink.
func (p *Progress) Emit(r Record) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch r.Kind {
	case KindHeader:
		p.total = r.Cells
		p.workers = r.Workers
	case KindSchedule:
		if p.estimate != nil {
			if ns, ok := p.estimate(r.Module, r.Test, r.Deriv, r.Platform); ok {
				p.estimated[r.CellID()] = ns
				p.remainNs += ns
			}
		}
	case KindStart:
		if id := r.CellID(); !p.started[id] {
			p.started[id] = true
			p.inflight[r.Platform]++
		}
	case KindRetry:
		p.retries++
	case KindCacheHit:
		p.cached++
	case KindQuarantine:
		p.skipped++
	case KindOutcome:
		p.done++
		switch r.Status {
		case StatusPassed:
			p.passed++
		case StatusBroken:
			p.broken++
		case StatusFlaky:
			p.failed++
			p.flaky++
		default:
			p.failed++
		}
		id := r.CellID()
		if p.started[id] {
			delete(p.started, id)
			if p.inflight[r.Platform] > 0 {
				p.inflight[r.Platform]--
			}
		}
		if ns, ok := p.estimated[id]; ok {
			p.remainNs -= ns
			delete(p.estimated, id)
		}
	default:
		return // runtime samples and end records don't change the board
	}
	p.redraw(false)
}

// Logf erases the status line, writes one log line to the log writer,
// and redraws — the clean-interleave contract for -progress with -v.
func (p *Progress) Logf(format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.clear()
	w := p.log
	if w == nil {
		w = p.out
	}
	fmt.Fprintf(w, format+"\n", args...)
	p.redraw(true)
}

// Done finalises the board: a last redraw and a newline so subsequent
// output starts on a fresh line.
func (p *Progress) Done() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.redraw(true)
	if p.drawn {
		fmt.Fprintln(p.out)
	}
	p.closed = true
}

// clear erases the current status line (caller holds the lock).
func (p *Progress) clear() {
	if p.drawn {
		fmt.Fprint(p.out, "\r\x1b[K")
	}
}

// redraw repaints the status line, throttled to ~20 Hz unless forced
// (caller holds the lock).
func (p *Progress) redraw(force bool) {
	if p.closed {
		return
	}
	now := time.Now()
	if !force && p.drawn && now.Sub(p.lastDraw) < 50*time.Millisecond {
		return
	}
	p.lastDraw = now
	fmt.Fprint(p.out, "\r\x1b[K"+p.line())
	p.drawn = true
}

// line renders the status text (caller holds the lock).
func (p *Progress) line() string {
	var b strings.Builder
	total := p.total
	if total < p.done {
		total = p.done
	}
	// A 20-slot bar keeps the line narrow enough for small terminals.
	const slots = 20
	fill := 0
	if total > 0 {
		fill = p.done * slots / total
	}
	fmt.Fprintf(&b, "[%s%s] %d/%d", strings.Repeat("#", fill), strings.Repeat(".", slots-fill), p.done, total)
	fmt.Fprintf(&b, "  pass %d fail %d broken %d", p.passed, p.failed, p.broken)
	if p.flaky > 0 {
		fmt.Fprintf(&b, " flaky %d", p.flaky)
	}
	if p.retries > 0 {
		fmt.Fprintf(&b, "  retries %d", p.retries)
	}
	if p.cached > 0 {
		fmt.Fprintf(&b, "  cached %d", p.cached)
	}
	if p.skipped > 0 {
		fmt.Fprintf(&b, "  quarantined %d", p.skipped)
	}
	if inflight := p.inflightSummary(); inflight != "" {
		fmt.Fprintf(&b, "  | %s", inflight)
	}
	if eta := p.eta(); eta > 0 && p.done < total {
		fmt.Fprintf(&b, "  eta %s", eta.Round(time.Second))
	}
	return b.String()
}

func (p *Progress) inflightSummary() string {
	var plats []string
	for plat, n := range p.inflight {
		if n > 0 {
			plats = append(plats, plat)
		}
	}
	sort.Strings(plats)
	parts := make([]string, 0, len(plats))
	for _, plat := range plats {
		parts = append(parts, fmt.Sprintf("%s:%d", plat, p.inflight[plat]))
	}
	return strings.Join(parts, " ")
}

// eta prefers the history store's expected remaining work divided
// across workers; with no estimates it extrapolates from progress so
// far (caller holds the lock).
func (p *Progress) eta() time.Duration {
	if p.remainNs > 0 {
		workers := p.workers
		if workers < 1 {
			workers = 1
		}
		return time.Duration(p.remainNs / int64(workers))
	}
	if p.done == 0 || p.total == 0 {
		return 0
	}
	elapsed := time.Since(p.start)
	return time.Duration(int64(elapsed) / int64(p.done) * int64(p.total-p.done))
}
