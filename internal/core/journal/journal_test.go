package journal

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// record builds the canonical little journal the tests share: a two-cell
// run with a retry, a cache hit, a breaker trip and a clean end record.
func sampleRecords() []Record {
	return []Record{
		{Kind: KindHeader, Version: Version, Label: "rel-1", Epoch: "e1", Workers: 2, Cells: 3, Engine: "advm"},
		{Kind: KindSchedule, Module: "alu", Test: "smoke", Deriv: "base", Platform: "golden"},
		{Kind: KindSchedule, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl"},
		{Kind: KindSchedule, Module: "mul", Test: "smoke", Deriv: "base", Platform: "golden"},
		{Kind: KindStart, Module: "alu", Test: "smoke", Deriv: "base", Platform: "golden", Attempt: 1},
		{Kind: KindOutcome, Module: "alu", Test: "smoke", Deriv: "base", Platform: "golden", Attempt: 1,
			Status: StatusPassed, Reason: "halt", Cycles: 100, BuildNs: 10, RunNs: 500},
		{Kind: KindStart, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl", Attempt: 1},
		{Kind: KindRetry, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl", Attempt: 1,
			Class: "transient", BackoffNs: 1000},
		{Kind: KindBreaker, Platform: "rtl", From: "closed", To: "open"},
		{Kind: KindStart, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl", Attempt: 2},
		{Kind: KindOutcome, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl", Attempt: 2,
			Status: StatusFlaky, Reason: "halt", Cycles: 100, BuildNs: 20, RunNs: 900},
		{Kind: KindCacheHit, Module: "mul", Test: "smoke", Deriv: "base", Platform: "golden"},
		{Kind: KindOutcome, Module: "mul", Test: "smoke", Deriv: "base", Platform: "golden", Attempt: 1,
			Status: StatusPassed, Reason: "halt", Cached: true},
		{Kind: KindTriage, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl", Ref: "diverged @ pc=4"},
		{Kind: KindRuntime, Goroutines: 8, HeapBytes: 1 << 20, GCPauseNs: 1234},
		{Kind: KindEnd, Passed: 2, Failed: 1, Flaky: 1, WallNs: 999,
			BuildHits: 1, BuildMiss: 2, RunHits: 1, RunMiss: 2},
	}
}

func TestWriterRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range sampleRecords() {
		w.Emit(r)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got, want := w.Count(), uint64(len(sampleRecords())); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(recs) != len(sampleRecords()) {
		t.Fatalf("read %d records, want %d", len(recs), len(sampleRecords()))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if recs[0].Kind != KindHeader || recs[0].Label != "rel-1" {
		t.Fatalf("header = %+v", recs[0])
	}
	if id := recs[5].CellID(); id != "alu/smoke@base/golden" {
		t.Fatalf("CellID = %q", id)
	}
}

func TestWriterConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	var wg sync.WaitGroup
	const emitters, per = 8, 50
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				w.Emit(Record{Kind: KindStart, Module: "m", Test: "t", Deriv: "d", Platform: "golden"})
			}
		}()
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read after concurrent emit: %v", err)
	}
	if len(recs) != emitters*per {
		t.Fatalf("read %d records, want %d", len(recs), emitters*per)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate Seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

func TestNilWriterAndTee(t *testing.T) {
	var w *Writer
	w.Emit(Record{Kind: KindHeader}) // must not panic
	if w.Count() != 0 {
		t.Fatal("nil writer Count != 0")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}

	var got []Record
	sink := Tee(nil, SinkFunc(func(r Record) { got = append(got, r) }), nil)
	sink.Emit(Record{Kind: KindEnd})
	if len(got) != 1 || got[0].Kind != KindEnd {
		t.Fatalf("tee delivered %v", got)
	}
	Tee(nil, nil).Emit(Record{Kind: KindEnd}) // zero live sinks: no-op
}

func TestMaskStripsVolatileFields(t *testing.T) {
	var a, b bytes.Buffer
	for i, buf := range []*bytes.Buffer{&a, &b} {
		w := NewWriter(buf)
		for _, r := range sampleRecords() {
			// Perturb the wall-clock-ish fields between the two runs: Mask
			// must make them identical anyway.
			r.BuildNs += int64(i * 7)
			r.RunNs += int64(i * 13)
			r.BackoffNs += int64(i * 3)
			r.WallNs += int64(i * 17)
			r.Goroutines += int64(i)
			r.HeapBytes += int64(i * 4096)
			r.GCPauseNs += int64(i)
			if r.Kind == KindHeader {
				r.Wall = map[bool]string{false: "2026-01-01T00:00:00Z", true: "2026-01-02T09:30:00Z"}[i == 1]
			}
			w.Emit(r)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	ma, err := Mask(a.Bytes())
	if err != nil {
		t.Fatalf("Mask: %v", err)
	}
	mb, err := Mask(b.Bytes())
	if err != nil {
		t.Fatalf("Mask: %v", err)
	}
	if !bytes.Equal(ma, mb) {
		t.Fatalf("masked journals differ:\n%s\n--- vs ---\n%s", ma, mb)
	}
	if bytes.Contains(ma, []byte(`"t_ns"`)) || bytes.Contains(ma, []byte(`"run_ns"`)) ||
		bytes.Contains(ma, []byte(`"wall"`)) || bytes.Contains(ma, []byte(`"heap_bytes"`)) {
		t.Fatalf("masked journal still contains volatile keys:\n%s", ma)
	}
	// Deterministic payloads survive.
	if !bytes.Contains(ma, []byte(`"label":"rel-1"`)) || !bytes.Contains(ma, []byte(`"cycles":100`)) {
		t.Fatalf("masked journal lost deterministic payload:\n%s", ma)
	}
}

func TestAnalyze(t *testing.T) {
	a := Analyze(sampleRecords())
	if a.Header.Label != "rel-1" || !a.HasEnd {
		t.Fatalf("header/end = %+v / %v", a.Header, a.HasEnd)
	}
	if len(a.Schedule) != 3 || a.Schedule[0] != "alu/smoke@base/golden" {
		t.Fatalf("schedule = %v", a.Schedule)
	}
	passed, failed, broken, flaky := a.Counts()
	if passed != 2 || failed != 1 || broken != 0 || flaky != 1 {
		t.Fatalf("counts = %d/%d/%d/%d", passed, failed, broken, flaky)
	}
	if a.CacheHits != 1 || len(a.Retries) != 1 || len(a.Breakers) != 1 {
		t.Fatalf("cache/retries/breakers = %d/%d/%d", a.CacheHits, len(a.Retries), len(a.Breakers))
	}
	if ref := a.TriageRefs["alu/smoke@base/rtl"]; ref != "diverged @ pc=4" {
		t.Fatalf("triage ref = %q", ref)
	}
	if a.MaxGoroutines != 8 || a.MaxGCPauseNs != 1234 {
		t.Fatalf("runtime peaks = %d goroutines, %d gc pause", a.MaxGoroutines, a.MaxGCPauseNs)
	}

	lanes := a.Lanes()
	if len(lanes) != 2 || lanes[0].Platform != "rtl" {
		t.Fatalf("lanes = %+v", lanes)
	}
	if lanes[0].Retries != 1 || lanes[0].Flaky != 1 {
		t.Fatalf("rtl lane = %+v", lanes[0])
	}

	slow := a.Slowest(5)
	// The cached outcome is excluded: two live outcomes, rtl first.
	if len(slow) != 2 || slow[0].Platform != "rtl" {
		t.Fatalf("slowest = %+v", slow)
	}

	storms := a.RetryStorms()
	if len(storms) != 1 || storms[0].Attempts != 2 || storms[0].BackoffNs != 1000 {
		t.Fatalf("storms = %+v", storms)
	}

	if cs := a.CacheSummary(); !strings.Contains(cs, "build 1/3") || !strings.Contains(cs, "run 1/3") {
		t.Fatalf("cache summary = %q", cs)
	}
}

func TestTrendVs(t *testing.T) {
	prev := Analyze(sampleRecords())
	// Current run: the rtl cell recovered, the mul golden cell regressed.
	cur := Analyze([]Record{
		{Kind: KindHeader, Label: "rel-1"},
		{Kind: KindOutcome, Module: "alu", Test: "smoke", Deriv: "base", Platform: "golden", Status: StatusPassed, RunNs: 400},
		{Kind: KindOutcome, Module: "alu", Test: "smoke", Deriv: "base", Platform: "rtl", Status: StatusPassed, RunNs: 800},
		{Kind: KindOutcome, Module: "mul", Test: "smoke", Deriv: "base", Platform: "golden", Status: StatusFailed},
		{Kind: KindEnd},
	})
	tr := cur.TrendVs(prev)
	if !tr.SameLabel {
		t.Fatal("labels match, SameLabel = false")
	}
	if len(tr.Regressed) != 1 || tr.Regressed[0] != "mul/smoke@base/golden" {
		t.Fatalf("regressed = %v", tr.Regressed)
	}
	if len(tr.Recovered) != 1 || tr.Recovered[0] != "alu/smoke@base/rtl" {
		t.Fatalf("recovered = %v", tr.Recovered)
	}
	if len(tr.Rows) != 2 {
		t.Fatalf("rows = %+v", tr.Rows)
	}
}

func TestWriteTextAndHTML(t *testing.T) {
	a := Analyze(sampleRecords())
	est := func(cellID string) (int64, int, bool) {
		if cellID == "alu/smoke@base/rtl" {
			return 850, 4, true
		}
		return 0, 0, false
	}

	var text bytes.Buffer
	if err := WriteText(&text, a, ReportOptions{Top: 10, Estimate: est}); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := text.String()
	for _, want := range []string{"rel-1", "rtl", "alu/smoke@base/rtl", "retry", "diverged @ pc=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}

	var html bytes.Buffer
	if err := WriteHTML(&html, a, ReportOptions{Top: 10, Estimate: est}); err != nil {
		t.Fatalf("WriteHTML: %v", err)
	}
	h := html.String()
	for _, want := range []string{"<html", "rel-1", "alu/smoke@base/rtl", "</html>"} {
		if !strings.Contains(h, want) {
			t.Fatalf("html report missing %q", want)
		}
	}

	// Trend section renders when Prev is supplied.
	prev := Analyze(sampleRecords())
	var withTrend bytes.Buffer
	if err := WriteText(&withTrend, a, ReportOptions{Prev: prev}); err != nil {
		t.Fatalf("WriteText with trend: %v", err)
	}
	if !strings.Contains(withTrend.String(), "trend") {
		t.Fatalf("trend section missing:\n%s", withTrend.String())
	}
}

func TestProgressBoard(t *testing.T) {
	var status, logs bytes.Buffer
	p := NewProgress(&status)
	p.SetLogWriter(&logs)
	p.SetEstimator(func(module, test, deriv, platform string) (int64, bool) {
		return 1_000_000_000, true // 1s per cell
	})
	for _, r := range sampleRecords() {
		p.Emit(r)
	}
	p.Logf("FAIL %s: %s", "alu/smoke@base/rtl", "diverged")
	p.Done()
	p.Done() // idempotent

	s := status.String()
	if !strings.Contains(s, "3/3") {
		t.Fatalf("status line missing done/total:\n%q", s)
	}
	if !strings.Contains(s, "pass 2 fail 1") {
		t.Fatalf("status line missing verdicts:\n%q", s)
	}
	if !strings.Contains(s, "flaky 1") || !strings.Contains(s, "retries 1") || !strings.Contains(s, "cached 1") {
		t.Fatalf("status line missing counters:\n%q", s)
	}
	if !strings.Contains(s, "\r\x1b[K") {
		t.Fatalf("status output is not in-place redraw:\n%q", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatalf("Done did not end the status line:\n%q", s)
	}
	// Logf lines land on the log writer, not the status stream.
	if got := logs.String(); got != "FAIL alu/smoke@base/rtl: diverged\n" {
		t.Fatalf("log stream = %q", got)
	}
	if strings.Contains(s, "FAIL") {
		t.Fatalf("log line leaked into status stream:\n%q", s)
	}
}

func TestReadRejectsMalformedLine(t *testing.T) {
	_, err := Read(strings.NewReader("{\"kind\":\"header\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line-2 parse error", err)
	}
}

func TestMaskDropsExecutionShape(t *testing.T) {
	// Two journals of the same frozen spec, one serial and one sharded:
	// different seq numbering, worker counts, runtime-sample cadence,
	// and cache totals, same cells. They must mask identically.
	serial := `{"kind":"header","seq":1,"t_ns":10,"version":1,"label":"rel-1","epoch":"e1","workers":1,"cells":1}
{"kind":"schedule","seq":2,"module":"ES1","test":"t1","deriv":"SC88-A","platform":"golden"}
{"kind":"runtime","seq":3,"goroutines":8,"heap_bytes":1000}
{"kind":"start","seq":4,"module":"ES1","test":"t1","deriv":"SC88-A","platform":"golden","attempt":1}
{"kind":"outcome","seq":5,"module":"ES1","test":"t1","deriv":"SC88-A","platform":"golden","attempt":1,"status":"passed","reason":"halt","cycles":100,"insts":50}
{"kind":"end","seq":6,"passed":1,"wall_ns":999,"build_hits":12,"build_misses":3,"run_hits":1}
`
	sharded := `{"kind":"header","seq":1,"t_ns":77,"version":1,"label":"rel-1","epoch":"e1","workers":4,"cells":1}
{"kind":"schedule","seq":2,"module":"ES1","test":"t1","deriv":"SC88-A","platform":"golden"}
{"kind":"start","seq":3,"module":"ES1","test":"t1","deriv":"SC88-A","platform":"golden","attempt":1}
{"kind":"outcome","seq":4,"module":"ES1","test":"t1","deriv":"SC88-A","platform":"golden","attempt":1,"status":"passed","reason":"halt","cycles":100,"insts":50}
{"kind":"end","seq":5,"passed":1,"wall_ns":123}
`
	m1, err := Mask([]byte(serial))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Mask([]byte(sharded))
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Fatalf("serial and sharded journals mask differently:\n%s\n--- vs ---\n%s", m1, m2)
	}
	if strings.Contains(string(m1), "runtime") {
		t.Fatal("runtime record survived the mask")
	}
	for _, key := range []string{`"seq"`, `"workers"`, `"build_hits"`, `"run_hits"`} {
		if strings.Contains(string(m1), key) {
			t.Fatalf("masked journal still carries %s:\n%s", key, m1)
		}
	}
	// The spec-determined payload survives.
	for _, key := range []string{`"label":"rel-1"`, `"cycles":100`, `"status":"passed"`} {
		if !strings.Contains(string(m1), key) {
			t.Fatalf("masked journal lost %s:\n%s", key, m1)
		}
	}
}

func TestResequence(t *testing.T) {
	in := []Record{
		{Kind: KindHeader, Seq: 1},
		{Kind: KindStart, Seq: 7, Module: "ES1"}, // worker-local numbering
		{Kind: KindOutcome, Seq: 2, Module: "ES1"},
		{Kind: KindEnd},
	}
	out := Resequence(in)
	for i, r := range out {
		if r.Seq != uint64(i+1) {
			t.Fatalf("out[%d].Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	// Input untouched; payload carried over.
	if in[1].Seq != 7 || out[1].Module != "ES1" {
		t.Fatalf("Resequence mutated its input or dropped payload: %+v / %+v", in[1], out[1])
	}
}
