package resilience

import (
	"sort"
	"sync"
)

// Quarantine benches chronically flaky matrix cells. A cell that fails
// and then passes on retry is flaky — the pipeline reports it Flaky,
// never Passed — and after `after` flaky runs the cell is quarantined:
// subsequent regressions sharing the store skip it outright instead of
// burning retry budget on a known-bad pairing. Like the build and run
// caches, a Quarantine is shared across regressions by handing the same
// instance to each Spec. All methods are nil-safe.
type Quarantine struct {
	mu      sync.Mutex
	after   int
	flaky   map[string]int
	benched map[string]bool
}

// NewQuarantine benches a cell after it has been flaky `after` times.
// after < 1 disables quarantining (returns nil).
func NewQuarantine(after int) *Quarantine {
	if after < 1 {
		return nil
	}
	return &Quarantine{after: after, flaky: map[string]int{}, benched: map[string]bool{}}
}

// RecordFlaky counts one flaky run of the cell and reports whether the
// cell is now (or already was) quarantined.
func (q *Quarantine) RecordFlaky(key string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.flaky[key]++
	if q.flaky[key] >= q.after {
		q.benched[key] = true
	}
	return q.benched[key]
}

// Quarantined reports whether the cell is benched.
func (q *Quarantine) Quarantined(key string) bool {
	if q == nil {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.benched[key]
}

// Size is the number of benched cells.
func (q *Quarantine) Size() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.benched)
}

// Cells lists the benched cell keys, sorted.
func (q *Quarantine) Cells() []string {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	out := make([]string, 0, len(q.benched))
	for k := range q.benched {
		out = append(out, k)
	}
	q.mu.Unlock()
	sort.Strings(out)
	return out
}
