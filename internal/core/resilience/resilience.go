// Package resilience is the fault-tolerance layer of the regression
// pipeline. The paper's Section 5 claim — one ADVM suite runs unmodified
// on every platform of the speed ladder — silently assumes the platforms
// always answer. Real accelerators, bondout parts, and product silicon
// are shared lab hardware: slow, contended, and flaky. This package
// provides the policy pieces the matrix runner threads through every
// cell on those rungs:
//
//   - error classification: transient faults (a dropped connection, a
//     wedged run cancelled at its deadline, a lost mailbox word) versus
//     deterministic failures (a real test verdict, an assembly error);
//   - a deterministic retry policy with exponential backoff and seeded
//     jitter, applied only to the physical platform kinds;
//   - a per-kind circuit breaker that stops hammering a rung that has
//     answered with consecutive transient faults;
//   - a flaky-cell quarantine: a cell that fails and then passes on
//     retry is Flaky, never Passed, and after enough flaky runs it is
//     benched so a known-bad pairing stops burning lab time.
//
// Everything here is deterministic by construction — backoff jitter is
// seeded, breaker cool-down is counted in cells rather than wall-clock —
// so the fault-injection tests (internal/flaky) reproduce bit-identical
// schedules.
package resilience

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/platform"
)

// TransientError marks a platform error as transient: retrying the run
// may succeed. The fault-injection harness and (in a lab deployment)
// the platform transport wrap connection drops, timeouts, and device
// resets in it; everything unwrapped is treated as deterministic.
type TransientError struct{ Err error }

// Error implements error.
func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }

// Unwrap exposes the cause to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as a transient platform fault. A nil err returns
// nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// Transientf formats a new transient platform fault.
func Transientf(format string, args ...any) error {
	return &TransientError{Err: fmt.Errorf(format, args...)}
}

// IsTransient reports whether err is (or wraps) a TransientError.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// Class is the retry-relevant classification of one run attempt.
type Class uint8

// Attempt classes.
const (
	// ClassPassed: the run produced a passing verdict.
	ClassPassed Class = iota
	// ClassDeterministic: the run produced a stable failure — a real
	// test verdict, an architectural stop, an assembly or link error.
	// Retrying cannot change it.
	ClassDeterministic
	// ClassTransient: the run was lost to the platform rather than
	// failed by the test — cancelled at its deadline, halted without a
	// mailbox verdict, stopped for a reason outside the architectural
	// set, or errored with a TransientError. Worth retrying on the
	// physical rungs.
	ClassTransient
)

func (c Class) String() string {
	switch c {
	case ClassPassed:
		return "passed"
	case ClassDeterministic:
		return "deterministic"
	case ClassTransient:
		return "transient"
	}
	return "class?"
}

// architectural is the closed set of stop reasons a healthy platform
// can report. Anything outside it (a spurious reset, a transport
// artifact) is a platform fault, not a test verdict.
var architectural = map[platform.StopReason]bool{
	platform.StopHalt:        true,
	platform.StopMaxInsts:    true,
	platform.StopMaxCycles:   true,
	platform.StopBreakpoint:  true,
	platform.StopUnhandled:   true,
	platform.StopDoubleFault: true,
	platform.StopAbort:       true,
	platform.StopDivergence:  true,
}

// ClassifyError classifies a run that returned an error instead of a
// result: transient if wrapped as such, deterministic otherwise
// (assembly and link failures replay identically).
func ClassifyError(err error) Class {
	if IsTransient(err) {
		return ClassTransient
	}
	return ClassDeterministic
}

// ClassifyResult classifies a completed run. A pass is a pass; a run
// cancelled at its deadline (a hung platform), a clean halt that never
// latched a mailbox verdict (a dropped mailbox write), and any stop
// reason outside the architectural set (a spurious reset) are
// transient; every other failure is a deterministic test verdict.
func ClassifyResult(res *platform.Result) Class {
	switch {
	case res.Passed():
		return ClassPassed
	case res.Reason == platform.StopCancelled:
		return ClassTransient
	case res.Reason == platform.StopHalt && !res.MboxDone:
		return ClassTransient
	case !architectural[res.Reason]:
		return ClassTransient
	}
	return ClassDeterministic
}

// Retryable reports whether a platform kind's transient failures are
// worth retrying: the physical rungs (hardware accelerator, bondout,
// product silicon), which sit behind shared lab infrastructure. The
// simulated rungs are deterministic — a failure there replays
// identically, so retrying only wastes cycles.
func Retryable(k platform.Kind) bool {
	switch k {
	case platform.KindEmulator, platform.KindBondout, platform.KindSilicon:
		return true
	}
	return false
}

// RetryPolicy bounds transient-failure retries for one regression. The
// zero value disables retries (a single attempt per cell).
type RetryPolicy struct {
	// MaxAttempts is the total run budget per cell, first attempt
	// included; values below 1 mean one attempt (no retries).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further
	// retry doubles it. Zero retries immediately.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (0 = uncapped).
	MaxBackoff time.Duration
	// Seed drives the deterministic jitter. Two regressions with the
	// same seed produce identical backoff schedules.
	Seed int64
}

// Attempts returns the effective per-cell attempt budget.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the wait before retry number attempt (1 = the first
// retry) of the cell identified by key: exponential doubling from
// BaseBackoff, capped at MaxBackoff, with deterministic jitter in
// [d/2, d) seeded by (Seed, key, attempt). Jitter decorrelates cells
// retrying against the same contended platform without introducing
// run-to-run nondeterminism.
func (p RetryPolicy) Backoff(key string, attempt int) time.Duration {
	if p.BaseBackoff <= 0 || attempt < 1 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	h := fnv.New64a()
	var b [16]byte
	binary.LittleEndian.PutUint64(b[:8], uint64(p.Seed))
	binary.LittleEndian.PutUint64(b[8:], uint64(attempt))
	h.Write(b[:])
	h.Write([]byte(key))
	frac := h.Sum64() % 1000
	half := d / 2
	return half + time.Duration(uint64(half)*frac/1000)
}

// CellKey names one matrix cell for the quarantine store and backoff
// jitter: module/test on a derivative and platform kind.
func CellKey(module, test, deriv string, k platform.Kind) string {
	return CellKeyString(module, test, deriv, k.String())
}

// CellKeyString is CellKey over an already-rendered platform kind name —
// the canonical cell-naming format shared with the journal records and
// the run-history store, which carry the kind as a string.
func CellKeyString(module, test, deriv, kind string) string {
	return module + "/" + test + "@" + deriv + "/" + kind
}
