package resilience

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/platform"
)

func TestTransientWrapping(t *testing.T) {
	base := errors.New("connection dropped")
	te := Transient(base)
	if !IsTransient(te) {
		t.Error("Transient(err) not recognised")
	}
	if !errors.Is(te, base) {
		t.Error("cause lost in wrapping")
	}
	if IsTransient(base) {
		t.Error("plain error classified transient")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) must be nil")
	}
	wrapped := fmt.Errorf("cell failed: %w", Transientf("timeout on %s", "emulator"))
	if !IsTransient(wrapped) {
		t.Error("transient not found through wrapping")
	}
	if ClassifyError(wrapped) != ClassTransient {
		t.Error("ClassifyError(transient) != ClassTransient")
	}
	if ClassifyError(base) != ClassDeterministic {
		t.Error("ClassifyError(plain) != ClassDeterministic")
	}
}

func TestClassifyResult(t *testing.T) {
	cases := []struct {
		name string
		res  platform.Result
		want Class
	}{
		{"pass", platform.Result{Reason: platform.StopHalt, MboxDone: true, MboxResult: 0x600D}, ClassPassed},
		{"fail-verdict", platform.Result{Reason: platform.StopHalt, MboxDone: true, MboxResult: 0xBAD0}, ClassDeterministic},
		{"unhandled-trap", platform.Result{Reason: platform.StopUnhandled, MboxDone: true}, ClassDeterministic},
		{"max-insts", platform.Result{Reason: platform.StopMaxInsts}, ClassDeterministic},
		{"cancelled", platform.Result{Reason: platform.StopCancelled}, ClassTransient},
		{"dropped-mailbox", platform.Result{Reason: platform.StopHalt, MboxDone: false}, ClassTransient},
		{"spurious-reset", platform.Result{Reason: "spurious-reset"}, ClassTransient},
	}
	for _, c := range cases {
		if got := ClassifyResult(&c.res); got != c.want {
			t.Errorf("%s: classified %v, want %v", c.name, got, c.want)
		}
	}
}

func TestRetryableKinds(t *testing.T) {
	want := map[platform.Kind]bool{
		platform.KindGolden: false, platform.KindRTL: false, platform.KindGate: false,
		platform.KindEmulator: true, platform.KindBondout: true, platform.KindSilicon: true,
	}
	for k, w := range want {
		if Retryable(k) != w {
			t.Errorf("Retryable(%s) = %v, want %v", k, !w, w)
		}
	}
}

func TestBackoffDeterministicExponentialCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond, Seed: 7}
	key := CellKey("NVM", "TEST_X", "SC88-A", platform.KindEmulator)
	d1 := p.Backoff(key, 1)
	if d1 < 5*time.Millisecond || d1 >= 10*time.Millisecond {
		t.Errorf("attempt 1 backoff %v outside [base/2, base)", d1)
	}
	if p.Backoff(key, 1) != d1 {
		t.Error("backoff not deterministic for identical (seed, key, attempt)")
	}
	if (RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond, Seed: 8}).Backoff(key, 1) == d1 {
		t.Error("seed does not perturb jitter")
	}
	// Exponential growth capped: attempt 4 would be 80ms uncapped, the
	// cap bounds the pre-jitter duration at 40ms so the draw is < 40ms.
	d4 := p.Backoff(key, 4)
	if d4 >= 40*time.Millisecond {
		t.Errorf("attempt 4 backoff %v not capped by MaxBackoff", d4)
	}
	if d4 < 20*time.Millisecond {
		t.Errorf("attempt 4 backoff %v below capped/2", d4)
	}
	if (RetryPolicy{}).Backoff(key, 1) != 0 {
		t.Error("zero policy must not wait")
	}
	if (RetryPolicy{}).Attempts() != 1 {
		t.Error("zero policy must budget exactly one attempt")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, 2)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker denied traffic")
		}
		b.OnTransient()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker opened below threshold")
	}
	b.Allow()
	b.OnTransient() // third consecutive transient: opens
	if b.State() != BreakerOpen {
		t.Fatalf("breaker %v after threshold, want open", b.State())
	}
	// Probation: the first denied cell counts, the second flips to
	// half-open and is admitted as the probe.
	if b.Allow() {
		t.Fatal("open breaker admitted a cell during probation")
	}
	if !b.Allow() {
		t.Fatal("breaker did not half-open after probation")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second cell alongside the probe")
	}
	// Failed probe reopens…
	b.OnTransient()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not reopen")
	}
	// …and a successful probe after the next probation closes.
	b.Allow()
	if !b.Allow() {
		t.Fatal("no probe after reopen probation")
	}
	b.OnSuccess()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	trips, fastFailed := b.Stats()
	if trips != 2 || fastFailed != 3 {
		t.Errorf("stats = (%d trips, %d fast-failed), want (2, 3)", trips, fastFailed)
	}
}

func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker must always allow")
	}
	b.OnSuccess()
	b.OnTransient()
	if b.State() != BreakerClosed {
		t.Error("nil breaker must read closed")
	}
	var bs *BreakerSet
	if bs.For(platform.KindEmulator) != nil {
		t.Error("nil set must hand out nil breakers")
	}
	if bs.Summary() != "" {
		t.Error("nil set summary must be empty")
	}
	if NewBreakerSet(0, 1) != nil {
		t.Error("threshold 0 must disable the set")
	}
}

func TestBreakerSetScopesPhysicalKinds(t *testing.T) {
	bs := NewBreakerSet(1, 1)
	if bs.For(platform.KindGolden) != nil || bs.For(platform.KindRTL) != nil || bs.For(platform.KindGate) != nil {
		t.Error("simulated kinds must not be breaker-guarded")
	}
	for _, k := range []platform.Kind{platform.KindEmulator, platform.KindBondout, platform.KindSilicon} {
		if bs.For(k) == nil {
			t.Errorf("physical kind %s has no breaker", k)
		}
	}
	bs.For(platform.KindEmulator).OnTransient()
	if s := bs.Summary(); s != "emulator=open(1 trips, 0 fast-failed)" {
		t.Errorf("summary = %q", s)
	}
}

func TestQuarantine(t *testing.T) {
	q := NewQuarantine(2)
	key := CellKey("NVM", "TEST_X", "SC88-A", platform.KindEmulator)
	if q.RecordFlaky(key) {
		t.Error("benched after one flaky run, want threshold 2")
	}
	if q.Quarantined(key) || q.Size() != 0 {
		t.Error("premature quarantine")
	}
	if !q.RecordFlaky(key) {
		t.Error("not benched at threshold")
	}
	if !q.Quarantined(key) || q.Size() != 1 {
		t.Error("quarantine not recorded")
	}
	q.RecordFlaky("other")
	q.RecordFlaky("other")
	cells := q.Cells()
	if len(cells) != 2 || cells[0] != key && cells[1] != key {
		t.Errorf("Cells() = %v", cells)
	}
	var nilQ *Quarantine
	if nilQ.RecordFlaky(key) || nilQ.Quarantined(key) || nilQ.Size() != 0 || nilQ.Cells() != nil {
		t.Error("nil quarantine must be inert")
	}
	if NewQuarantine(0) != nil {
		t.Error("after 0 must disable quarantining")
	}
}
