package resilience

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/platform"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: traffic flows; transient failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the platform is presumed down; cells fast-fail
	// without touching it until the probation count elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe cell is allowed through; its outcome
	// closes or reopens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "breaker?"
}

// Breaker is a count-based circuit breaker guarding one platform kind.
// Unlike the usual wall-clock design, cool-down is measured in skipped
// cells (Probation): the matrix is a deterministic work list, so
// counting cells keeps the whole fail/skip/probe schedule reproducible
// under a seeded fault plan, independent of host timing. All methods
// are safe on a nil receiver (no-op, always allow) so the pipeline can
// thread an optional breaker without guards.
type Breaker struct {
	mu sync.Mutex
	// threshold consecutive transient failures open the breaker.
	threshold int
	// probation is how many cells fast-fail while open before one
	// probe is let through.
	probation int

	state    BreakerState
	failures int // consecutive transients while closed
	skipped  int // cells fast-failed while open
	trips    int // times the breaker opened (telemetry)
	fastFail int // total cells fast-failed (telemetry)
}

// NewBreaker builds a breaker that opens after threshold consecutive
// transient failures and probes again after probation skipped cells.
// threshold < 1 disables the breaker (returns nil).
func NewBreaker(threshold, probation int) *Breaker {
	if threshold < 1 {
		return nil
	}
	if probation < 1 {
		probation = 1
	}
	return &Breaker{threshold: threshold, probation: probation}
}

// Allow reports whether the next cell may run. While open it counts the
// denied cell toward probation; once probation elapses the breaker
// half-opens and admits exactly one probe.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// One probe is already in flight; further cells keep fast-failing.
		b.fastFail++
		return false
	default: // BreakerOpen
		b.skipped++
		if b.skipped >= b.probation {
			b.state = BreakerHalfOpen
			return true
		}
		b.fastFail++
		return false
	}
}

// OnSuccess records a non-transient outcome (pass or deterministic
// verdict — either way the platform answered) and closes the breaker.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.skipped = 0
}

// OnTransient records a transient platform fault. At the failure
// threshold — or on a failed half-open probe — the breaker (re)opens.
func (b *Breaker) OnTransient() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.skipped = 0
		b.trips++
		return
	}
	b.failures++
	if b.state == BreakerClosed && b.failures >= b.threshold {
		b.state = BreakerOpen
		b.skipped = 0
		b.trips++
	}
}

// State returns the current automaton state.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns (trips, cells fast-failed) for telemetry.
func (b *Breaker) Stats() (trips, fastFailed int) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.fastFail
}

// BreakerSet holds one breaker per platform kind. Only the retryable
// (physical) kinds get a breaker; the simulated kinds always pass
// through, matching the retry policy's scope. Nil-safe throughout.
type BreakerSet struct {
	mu       sync.Mutex
	breakers map[platform.Kind]*Breaker
}

// NewBreakerSet builds per-kind breakers for every retryable kind.
// threshold < 1 disables breaking entirely (returns nil).
func NewBreakerSet(threshold, probation int) *BreakerSet {
	if threshold < 1 {
		return nil
	}
	bs := &BreakerSet{breakers: map[platform.Kind]*Breaker{}}
	for _, k := range []platform.Kind{platform.KindEmulator, platform.KindBondout, platform.KindSilicon} {
		bs.breakers[k] = NewBreaker(threshold, probation)
	}
	return bs
}

// For returns the breaker guarding kind k (nil for unguarded kinds).
func (bs *BreakerSet) For(k platform.Kind) *Breaker {
	if bs == nil {
		return nil
	}
	bs.mu.Lock()
	defer bs.mu.Unlock()
	return bs.breakers[k]
}

// Summary renders the non-closed breakers plus trip totals, e.g.
// "emulator=open(2 trips, 5 fast-failed)"; empty when everything is
// closed and untripped.
func (bs *BreakerSet) Summary() string {
	if bs == nil {
		return ""
	}
	bs.mu.Lock()
	kinds := make([]platform.Kind, 0, len(bs.breakers))
	for k := range bs.breakers {
		kinds = append(kinds, k)
	}
	bs.mu.Unlock()
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var parts []string
	for _, k := range kinds {
		b := bs.For(k)
		trips, ff := b.Stats()
		if b.State() == BreakerClosed && trips == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s(%d trips, %d fast-failed)", k, b.State(), trips, ff))
	}
	if len(parts) == 0 {
		return ""
	}
	var out string
	for i, p := range parts {
		if i > 0 {
			out += " "
		}
		out += p
	}
	return out
}
