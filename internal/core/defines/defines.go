// Package defines models the ADVM 'Global Defines' component of the
// abstraction layer (Figure 1). A Set is an ordered collection of named
// definitions, each with an optional per-derivative and per-platform
// override, rendered to the Globals.inc file every test and base function
// includes. Anywhere a test would previously have used a hardwired value
// now references a name in this file, so a specification or derivative
// change is absorbed by editing the Set — a single point of change —
// instead of re-factoring tests (the paper's Section 4, Figure 6).
package defines

import (
	"fmt"
	"sort"
	"strings"
)

// Kind distinguishes .EQU value definitions from .DEFINE textual aliases.
type Kind uint8

// Definition kinds.
const (
	// KindEqu renders as `NAME .EQU expr` (values and re-mapped names).
	KindEqu Kind = iota
	// KindDefine renders as `.DEFINE NAME text` (register aliases such as
	// the paper's `.DEFINE CallAddr A12`).
	KindDefine
)

// Entry is one definition.
type Entry struct {
	Name    string
	Kind    Kind
	Default string
	// PerDerivative maps a derivative macro (e.g. "DERIV_B") to an
	// override expression.
	PerDerivative map[string]string
	// PerPlatform maps a platform macro (e.g. "PLAT_SILICON") to an
	// override expression.
	PerPlatform map[string]string
	Comment     string
}

// clone deep-copies the entry.
func (e *Entry) clone() *Entry {
	c := *e
	c.PerDerivative = copyMap(e.PerDerivative)
	c.PerPlatform = copyMap(e.PerPlatform)
	return &c
}

func copyMap(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Set is the ordered Global Defines collection.
type Set struct {
	entries  []*Entry
	index    map[string]*Entry
	includes []string
}

// NewSet creates an empty Set.
func NewSet() *Set {
	return &Set{index: make(map[string]*Entry)}
}

// Clone deep-copies the Set (used by releases and porting what-ifs).
func (s *Set) Clone() *Set {
	out := NewSet()
	out.includes = append([]string(nil), s.includes...)
	for _, e := range s.entries {
		c := e.clone()
		out.entries = append(out.entries, c)
		out.index[c.Name] = c
	}
	return out
}

// AddInclude makes the rendered Globals.inc include another file first —
// typically the global-layer register definitions whose names the Set
// re-maps.
func (s *Set) AddInclude(name string) {
	for _, inc := range s.includes {
		if inc == name {
			return
		}
	}
	s.includes = append(s.includes, name)
}

// Includes returns the include list.
func (s *Set) Includes() []string { return append([]string(nil), s.includes...) }

// Len returns the number of entries.
func (s *Set) Len() int { return len(s.entries) }

// Names returns entry names in definition order.
func (s *Set) Names() []string {
	out := make([]string, len(s.entries))
	for i, e := range s.entries {
		out[i] = e.Name
	}
	return out
}

// Add appends a new definition. It returns an error on duplicates: every
// define has exactly one home, which is what makes it a single point of
// change.
func (s *Set) Add(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("defines: entry with empty name")
	}
	if _, dup := s.index[e.Name]; dup {
		return fmt.Errorf("defines: %q already defined", e.Name)
	}
	c := e.clone()
	s.entries = append(s.entries, c)
	s.index[c.Name] = c
	return nil
}

// MustAdd is Add for static construction; it panics on error.
func (s *Set) MustAdd(e Entry) {
	if err := s.Add(e); err != nil {
		panic(err)
	}
}

// Get returns the entry with the given name.
func (s *Set) Get(name string) (*Entry, bool) {
	e, ok := s.index[name]
	return e, ok
}

// SetDefault changes an entry's default expression.
func (s *Set) SetDefault(name, expr string) error {
	e, ok := s.index[name]
	if !ok {
		return fmt.Errorf("defines: %q not defined", name)
	}
	e.Default = expr
	return nil
}

// OverrideDerivative installs a derivative-specific value for an existing
// entry — the mechanism that absorbs derivative changes.
func (s *Set) OverrideDerivative(name, derivMacro, expr string) error {
	e, ok := s.index[name]
	if !ok {
		return fmt.Errorf("defines: %q not defined", name)
	}
	if e.PerDerivative == nil {
		e.PerDerivative = make(map[string]string)
	}
	e.PerDerivative[derivMacro] = expr
	return nil
}

// OverridePlatform installs a platform-specific value for an existing
// entry — the mechanism that adapts the environment to the simulation
// target (e.g. longer timeouts on silicon).
func (s *Set) OverridePlatform(name, platMacro, expr string) error {
	e, ok := s.index[name]
	if !ok {
		return fmt.Errorf("defines: %q not defined", name)
	}
	if e.PerPlatform == nil {
		e.PerPlatform = make(map[string]string)
	}
	e.PerPlatform[platMacro] = expr
	return nil
}

// Remove deletes an entry.
func (s *Set) Remove(name string) error {
	if _, ok := s.index[name]; !ok {
		return fmt.Errorf("defines: %q not defined", name)
	}
	delete(s.index, name)
	for i, e := range s.entries {
		if e.Name == name {
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			break
		}
	}
	return nil
}

// Render emits the Globals.inc text. Overrides render as .IFDEF chains on
// the derivative/platform macros so that one file serves every target;
// the include guard keeps double inclusion harmless.
func (s *Set) Render(module string) string {
	var b strings.Builder
	guard := "GLOBALS_" + strings.ToUpper(module) + "_INC"
	fmt.Fprintf(&b, ";; Globals.inc -- ADVM Global Defines for module %s\n", module)
	b.WriteString(";; GENERATED: the single point of change for this environment.\n")
	fmt.Fprintf(&b, ".IFNDEF %s\n.DEFINE %s\n\n", guard, guard)
	for _, inc := range s.includes {
		fmt.Fprintf(&b, ".INCLUDE %q\n", inc)
	}
	if len(s.includes) > 0 {
		b.WriteString("\n")
	}
	for _, e := range s.entries {
		if e.Comment != "" {
			fmt.Fprintf(&b, "; %s\n", e.Comment)
		}
		writeEntry(&b, e)
		b.WriteString("\n")
	}
	b.WriteString(".ENDIF\n")
	return b.String()
}

func writeEntry(b *strings.Builder, e *Entry) {
	// Derivative overrides first, then platform overrides, then default.
	// Both override classes rarely apply to one entry; when they do,
	// derivative wins (documented ADVM convention).
	var conds []struct{ macro, expr string }
	for _, m := range sortedKeys(e.PerDerivative) {
		conds = append(conds, struct{ macro, expr string }{m, e.PerDerivative[m]})
	}
	for _, m := range sortedKeys(e.PerPlatform) {
		conds = append(conds, struct{ macro, expr string }{m, e.PerPlatform[m]})
	}
	if len(conds) == 0 {
		b.WriteString(renderLine(e, e.Default))
		return
	}
	for i, c := range conds {
		if i == 0 {
			fmt.Fprintf(b, ".IFDEF %s\n", c.macro)
		} else {
			fmt.Fprintf(b, ".ELSE\n.IFDEF %s\n", c.macro)
		}
		b.WriteString(renderLine(e, c.expr))
	}
	b.WriteString(".ELSE\n")
	b.WriteString(renderLine(e, e.Default))
	for range conds {
		b.WriteString(".ENDIF\n")
	}
}

func renderLine(e *Entry, expr string) string {
	if e.Kind == KindDefine {
		return fmt.Sprintf(".DEFINE %s %s\n", e.Name, expr)
	}
	return fmt.Sprintf("%s .EQU %s\n", e.Name, expr)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
