package defines

import (
	"strings"
	"testing"
)

func TestAddGetAndDuplicates(t *testing.T) {
	s := NewSet()
	if err := s.Add(Entry{Name: "A", Default: "1"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(Entry{Name: "A", Default: "2"}); err == nil {
		t.Error("duplicate add should fail")
	}
	if err := s.Add(Entry{Default: "2"}); err == nil {
		t.Error("empty name should fail")
	}
	e, ok := s.Get("A")
	if !ok || e.Default != "1" {
		t.Errorf("Get = %+v, %v", e, ok)
	}
	if s.Len() != 1 || s.Names()[0] != "A" {
		t.Errorf("Len/Names wrong: %d %v", s.Len(), s.Names())
	}
}

func TestOverridesAndRender(t *testing.T) {
	s := NewSet()
	s.MustAdd(Entry{Name: "PAGE_FIELD_SIZE", Default: "5", Comment: "field width"})
	if err := s.OverrideDerivative("PAGE_FIELD_SIZE", "DERIV_B", "6"); err != nil {
		t.Fatal(err)
	}
	if err := s.OverridePlatform("PAGE_FIELD_SIZE", "PLAT_GATE", "5"); err != nil {
		t.Fatal(err)
	}
	if err := s.OverrideDerivative("MISSING", "DERIV_B", "1"); err == nil {
		t.Error("override of missing entry should fail")
	}
	out := s.Render("NVM")
	for _, want := range []string{
		".IFNDEF GLOBALS_NVM_INC",
		"; field width",
		".IFDEF DERIV_B",
		"PAGE_FIELD_SIZE .EQU 6",
		"PAGE_FIELD_SIZE .EQU 5",
		".ELSE",
		".ENDIF",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderDefineKind(t *testing.T) {
	s := NewSet()
	s.MustAdd(Entry{Name: "CallAddr", Kind: KindDefine, Default: "A12"})
	out := s.Render("X")
	if !strings.Contains(out, ".DEFINE CallAddr A12") {
		t.Errorf("missing .DEFINE rendering:\n%s", out)
	}
}

func TestIncludes(t *testing.T) {
	s := NewSet()
	s.AddInclude("registers.inc")
	s.AddInclude("registers.inc") // dedup
	if len(s.Includes()) != 1 {
		t.Errorf("includes = %v", s.Includes())
	}
	out := s.Render("X")
	if !strings.Contains(out, ".INCLUDE \"registers.inc\"") {
		t.Errorf("missing include:\n%s", out)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewSet()
	s.MustAdd(Entry{Name: "A", Default: "1",
		PerDerivative: map[string]string{"DERIV_B": "2"}})
	c := s.Clone()
	if err := c.OverrideDerivative("A", "DERIV_C", "3"); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDefault("A", "9"); err != nil {
		t.Fatal(err)
	}
	orig, _ := s.Get("A")
	if orig.Default != "1" || len(orig.PerDerivative) != 1 {
		t.Errorf("clone mutated original: %+v", orig)
	}
}

func TestRemoveAndSetDefault(t *testing.T) {
	s := NewSet()
	s.MustAdd(Entry{Name: "A", Default: "1"})
	s.MustAdd(Entry{Name: "B", Default: "2"})
	if err := s.Remove("A"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("A"); err == nil {
		t.Error("double remove should fail")
	}
	if s.Len() != 1 {
		t.Errorf("len = %d", s.Len())
	}
	if err := s.SetDefault("B", "7"); err != nil {
		t.Fatal(err)
	}
	if err := s.SetDefault("A", "7"); err == nil {
		t.Error("SetDefault on removed entry should fail")
	}
	e, _ := s.Get("B")
	if e.Default != "7" {
		t.Errorf("default = %q", e.Default)
	}
}

func TestMultipleOverridesNest(t *testing.T) {
	s := NewSet()
	s.MustAdd(Entry{Name: "W", Default: "5", PerDerivative: map[string]string{
		"DERIV_B": "6", "DERIV_SEC": "6",
	}})
	out := s.Render("M")
	// Two overrides nest: .IFDEF a ... .ELSE .IFDEF b ... .ELSE default
	if strings.Count(out, ".ENDIF") < 3 { // 2 nested + the include guard
		t.Errorf("expected nested conditionals:\n%s", out)
	}
	if strings.Count(out, "W .EQU 6") != 2 || strings.Count(out, "W .EQU 5") != 1 {
		t.Errorf("override rendering wrong:\n%s", out)
	}
}
