package port

import "testing"

func TestDiffLCSProperty(t *testing.T) {
	// Identical inputs cost nothing; disjoint inputs cost everything.
	if a, r := diffLines([]string{"x", "y"}, []string{"x", "y"}); a != 0 || r != 0 {
		t.Errorf("identical diff = +%d/-%d", a, r)
	}
	if a, r := diffLines([]string{"x", "y"}, []string{"p", "q", "r"}); a != 3 || r != 2 {
		t.Errorf("disjoint diff = +%d/-%d", a, r)
	}
}
