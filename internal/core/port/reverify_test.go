package port_test

import (
	"testing"

	"repro/internal/core/buildcache"
	"repro/internal/core/content"
	"repro/internal/core/derivative"
	. "repro/internal/core/port"
	"repro/internal/core/sysenv"
	"repro/internal/platform"
)

// TestReverifyPortedFamily: the shipped ported system re-verifies clean
// on the whole family, cached and uncached alike, and the verdicts agree
// with the plain per-cell loop.
func TestReverifyPortedFamily(t *testing.T) {
	s := content.PortedSystem()

	plain := Reverify(s, sysenv.BuildContext{}, nil, nil, platform.RunSpec{})
	if plain.Fail != 0 {
		t.Fatalf("uncached re-verify failed: %v", plain.Failures)
	}

	bc := s.NewBuildContext(buildcache.New())
	cached := Reverify(s, bc, nil, nil, platform.RunSpec{})
	if cached.Pass != plain.Pass || cached.Fail != plain.Fail {
		t.Fatalf("cached re-verify diverges: %d/%d vs %d/%d",
			cached.Pass, cached.Fail, plain.Pass, plain.Fail)
	}

	// A warm second sweep is all hits: no new cache fills.
	misses := bc.Cache.Stats().Misses
	warm := Reverify(s, bc, nil, nil, platform.RunSpec{})
	if warm.Fail != 0 {
		t.Fatalf("warm re-verify failed: %v", warm.Failures)
	}
	if got := bc.Cache.Stats().Misses; got != misses {
		t.Errorf("warm re-verify caused %d new misses", got-misses)
	}
}

// TestReverifyDetectsBreakage: re-verification on the unported system
// reports failures on the derivatives the suite was not written for, and
// names the broken cells.
func TestReverifyDetectsBreakage(t *testing.T) {
	s := content.UnportedSystem()
	bc := s.NewBuildContext(buildcache.New())
	st := Reverify(s, bc, []*derivative.Derivative{derivative.SEC()}, nil, platform.RunSpec{})
	if st.Fail == 0 {
		t.Fatal("unported suite unexpectedly re-verifies on SC88-SEC")
	}
	if len(st.Failures) != st.Fail {
		t.Errorf("Failures has %d entries for %d fails", len(st.Failures), st.Fail)
	}
	for _, f := range st.Failures {
		if f == "" {
			t.Error("empty failure description")
		}
	}
}
