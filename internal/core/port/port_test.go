package port_test

import (
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core/content"
	"repro/internal/core/derivative"
	. "repro/internal/core/port"
	"repro/internal/core/sysenv"
	"repro/internal/platform"

	_ "repro/internal/golden"
)

func countRuns(t *testing.T, s *sysenv.System, d *derivative.Derivative) (passed, bad int) {
	t.Helper()
	for _, e := range s.Envs() {
		for _, id := range e.TestIDs() {
			res, err := s.RunTest(e.Module, id, d, platform.KindGolden, platform.RunSpec{})
			if err != nil || !res.Passed() {
				bad++
			} else {
				passed++
			}
		}
	}
	return
}

// TestE4E5FamilyPort is the central porting experiment: applying the
// canonical change list to the unported system makes the whole suite pass
// on every derivative, touching only abstraction-layer files.
func TestE4E5FamilyPort(t *testing.T) {
	s := content.UnportedSystem()

	// Before: passes on A, broken elsewhere.
	if _, bad := countRuns(t, s, derivative.A()); bad != 0 {
		t.Fatalf("unported suite must pass on A, %d bad", bad)
	}
	preBad := 0
	for _, d := range derivative.Family()[1:] {
		_, bad := countRuns(t, s, d)
		preBad += bad
	}
	if preBad == 0 {
		t.Fatal("unported suite unexpectedly clean on derivatives")
	}

	res, err := ApplyAll(s, FamilyChanges()...)
	if err != nil {
		t.Fatal(err)
	}

	// After: passes everywhere.
	for _, d := range derivative.Family() {
		if passed, bad := countRuns(t, s, d); bad != 0 {
			t.Errorf("ported suite on %s: %d passed, %d bad", d.Name, passed, bad)
		}
	}

	// Cost: only abstraction-layer files were touched.
	for p := range res.Cost.PerFile {
		if !strings.Contains(p, "Abstraction_Layer/") {
			t.Errorf("port touched a non-abstraction-layer file: %s", p)
		}
	}
	// NVM Globals, UART Globals, and the five Base_Functions copies.
	if got := res.Cost.FilesTouched(); got != 7 {
		t.Errorf("files touched = %d, want 7:\n%s", got, res.Cost)
	}
	added, removed := res.Cost.LinesTouched()
	if added == 0 || added > 60 {
		t.Errorf("suspicious line count: +%d/-%d", added, removed)
	}
	if !strings.Contains(res.Cost.String(), "file(s) touched") {
		t.Error("cost report rendering broken")
	}
}

// TestADVMBeatsBaselineOnPortCost quantifies the paper's claim: the ADVM
// port touches O(abstraction-layer) files while the hardwired baseline
// port touches O(tests) files, and the gap grows with the change set.
func TestADVMBeatsBaselineOnPortCost(t *testing.T) {
	s := content.UnportedSystem()
	res, err := ApplyAll(s, FamilyChanges()...)
	if err != nil {
		t.Fatal(err)
	}
	advmFiles := res.Cost.FilesTouched()
	advmAdd, advmRem := res.Cost.LinesTouched()

	// Baseline: port A -> each derivative, accumulate distinct files.
	totalFiles := 0
	totalAdd, totalRem := 0, 0
	for _, to := range derivative.Family()[1:] {
		c := baseline.PortCost(derivative.A(), to)
		totalFiles += c.FilesTouched()
		a, r := c.LinesTouched()
		totalAdd += a
		totalRem += r
	}
	if totalFiles <= advmFiles {
		t.Errorf("baseline files (%d) should exceed ADVM files (%d)", totalFiles, advmFiles)
	}
	if totalAdd+totalRem <= advmAdd+advmRem {
		t.Errorf("baseline lines (%d) should exceed ADVM lines (%d)",
			totalAdd+totalRem, advmAdd+advmRem)
	}
	t.Logf("ADVM: %d files, %d lines; baseline: %d files, %d lines",
		advmFiles, advmAdd+advmRem, totalFiles, totalAdd+totalRem)
}

func TestChangeDescriptions(t *testing.T) {
	for _, c := range FamilyChanges() {
		if c.Name() == "" || c.Describe() == "" {
			t.Errorf("change %T lacks name/description", c)
		}
	}
}

func TestChangeErrors(t *testing.T) {
	s := content.UnportedSystem()
	if err := (FieldWiden{Define: "NO_SUCH", DerivMacro: "DERIV_B", NewValue: "1"}).Apply(s); err == nil {
		t.Error("widen of unknown define should fail")
	}
	if err := (ESArgSwap{Wrapper: "Base_Nope"}).Apply(s); err == nil {
		t.Error("swap of unknown wrapper should fail")
	}
	if err := (ReplaceFunction{Module: "NOPE"}).Apply(s); err == nil {
		t.Error("replace in unknown module should fail")
	}
}

func TestESArgSwapIdempotent(t *testing.T) {
	s := content.UnportedSystem()
	if err := (ESArgSwap{Wrapper: "Base_Init_Register"}).Apply(s); err != nil {
		t.Fatal(err)
	}
	before := EnvTree(s)
	if err := (ESArgSwap{Wrapper: "Base_Init_Register"}).Apply(s); err != nil {
		t.Fatal(err)
	}
	if d := Diff(before, EnvTree(s)); d.FilesTouched() != 0 {
		t.Errorf("second apply should be a no-op, touched %d", d.FilesTouched())
	}
}

func TestDiffMechanics(t *testing.T) {
	before := map[string]string{
		"a": "1\n2\n3\n",
		"b": "x\n",
		"c": "gone\n",
	}
	after := map[string]string{
		"a": "1\n2changed\n3\n",
		"b": "x\n",
		"d": "new\nfile\n",
	}
	rep := Diff(before, after)
	if rep.FilesTouched() != 3 {
		t.Fatalf("files touched = %d: %s", rep.FilesTouched(), rep)
	}
	da := rep.PerFile["a"]
	if da.Added != 1 || da.Removed != 1 {
		t.Errorf("a delta = %+v", da)
	}
	if !rep.PerFile["c"].Deleted || !rep.PerFile["d"].Created {
		t.Errorf("create/delete flags wrong: %+v", rep.PerFile)
	}
	if _, ok := rep.PerFile["b"]; ok {
		t.Error("unchanged file reported")
	}
}
