// Package port implements the ADVM porting engine: it applies
// derivative/specification change events to a system environment by
// editing only the abstraction layer — the paper's central claim — and it
// measures the cost of a port as the files and lines touched, for both
// the ADVM environment and the non-ADVM baseline comparator.
package port

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/basefuncs"
	"repro/internal/core/derivative"
	"repro/internal/core/sysenv"
	"repro/internal/platform"
)

// Change is one derivative or specification change event to absorb.
type Change interface {
	// Name is a short identifier ("field-widen").
	Name() string
	// Describe explains the change in paper terms.
	Describe() string
	// Apply edits the system's abstraction layers.
	Apply(s *sysenv.System) error
}

// FieldWiden is the paper's "field size has increased by one bit"
// derivative change: a named width define gets a derivative override.
type FieldWiden struct {
	// Module restricts the change to one environment ("" = wherever the
	// define exists).
	Module string
	// Define is the width define ("PAGE_FIELD_SIZE").
	Define string
	// DerivMacro selects the derivative ("DERIV_B").
	DerivMacro string
	// NewValue is the override expression ("6").
	NewValue string
}

// Name implements Change.
func (c FieldWiden) Name() string { return "field-widen" }

// Describe implements Change.
func (c FieldWiden) Describe() string {
	return fmt.Sprintf("%s = %s on %s (field widened)", c.Define, c.NewValue, c.DerivMacro)
}

// Apply implements Change.
func (c FieldWiden) Apply(s *sysenv.System) error {
	return overrideDefine(s, c.Module, c.Define, c.DerivMacro, c.NewValue)
}

// FieldShift is the paper's "control bits have been shifted by one"
// specification change.
type FieldShift struct {
	Module     string
	Define     string // the position define ("PAGE_FIELD_START_POSITION")
	DerivMacro string
	NewValue   string
}

// Name implements Change.
func (c FieldShift) Name() string { return "field-shift" }

// Describe implements Change.
func (c FieldShift) Describe() string {
	return fmt.Sprintf("%s = %s on %s (field shifted)", c.Define, c.NewValue, c.DerivMacro)
}

// Apply implements Change.
func (c FieldShift) Apply(s *sysenv.System) error {
	return overrideDefine(s, c.Module, c.Define, c.DerivMacro, c.NewValue)
}

// RegisterRename is the paper's "register name has been changed for a new
// derivative": the abstraction layer's re-map define gets a derivative
// override pointing at the new global name.
type RegisterRename struct {
	Module     string
	Define     string // the re-map define ("REG_UART_DR")
	DerivMacro string
	NewExpr    string // expression using the new global name
}

// Name implements Change.
func (c RegisterRename) Name() string { return "register-rename" }

// Describe implements Change.
func (c RegisterRename) Describe() string {
	return fmt.Sprintf("%s re-mapped to %s on %s (register renamed)", c.Define, c.NewExpr, c.DerivMacro)
}

// Apply implements Change.
func (c RegisterRename) Apply(s *sysenv.System) error {
	return overrideDefine(s, c.Module, c.Define, c.DerivMacro, c.NewExpr)
}

// ESArgSwap is the paper's Figure 7 scenario: a global-layer function
// "has now been re-written in such a way that the input registers have
// been swapped around". The wrapper in every environment's base-function
// library gains an adapter that swaps the arguments back when the ES_V2
// generation is selected.
type ESArgSwap struct {
	// Wrapper is the base-function name ("Base_Init_Register").
	Wrapper string
}

// Name implements Change.
func (c ESArgSwap) Name() string { return "es-arg-swap" }

// Describe implements Change.
func (c ESArgSwap) Describe() string {
	return fmt.Sprintf("adapter in %s for the re-written embedded software (inputs swapped)", c.Wrapper)
}

// adapterPrefix swaps d0 and d1 when the v2 embedded software is in use.
const adapterPrefix = `.IFDEF ES_V2
    ; adapter: ES v2 swapped its inputs to (addr=d0, value=d1)
    MOV d14, d0
    MOV d0, d1
    MOV d1, d14
.ENDIF
`

// Apply implements Change. Applying it twice is a no-op: an adapter that
// is already present is left alone.
func (c ESArgSwap) Apply(s *sysenv.System) error {
	found := false
	for _, e := range s.Envs() {
		f, ok := e.Funcs.Get(c.Wrapper)
		if !ok {
			continue
		}
		found = true
		if strings.Contains(f.Body, "ES_V2") {
			continue // adapter already present
		}
		nf := *f
		nf.Body = adapterPrefix + f.Body
		if err := e.Funcs.Replace(nf); err != nil {
			return err
		}
	}
	if !found {
		return fmt.Errorf("port: no environment defines wrapper %q", c.Wrapper)
	}
	return nil
}

func overrideDefine(s *sysenv.System, module, name, macro, expr string) error {
	touched := 0
	for _, e := range s.Envs() {
		if module != "" && e.Module != module {
			continue
		}
		if _, ok := e.Defines.Get(name); !ok {
			continue
		}
		if err := e.Defines.OverrideDerivative(name, macro, expr); err != nil {
			return err
		}
		touched++
	}
	if touched == 0 {
		return fmt.Errorf("port: define %q not found in any targeted environment", name)
	}
	return nil
}

// ReplaceFunction is a general base-function re-factor change (the single
// point of change for any wrapper rework).
type ReplaceFunction struct {
	Module string
	Func   basefuncs.Function
}

// Name implements Change.
func (c ReplaceFunction) Name() string { return "replace-function" }

// Describe implements Change.
func (c ReplaceFunction) Describe() string {
	return fmt.Sprintf("re-factor %s in %s", c.Func.Name, c.Module)
}

// Apply implements Change.
func (c ReplaceFunction) Apply(s *sysenv.System) error {
	e, ok := s.Env(c.Module)
	if !ok {
		return fmt.Errorf("port: no environment %q", c.Module)
	}
	return e.Funcs.Replace(c.Func)
}

// ---- cost accounting ----

// FileDelta is the per-file edit cost.
type FileDelta struct {
	Added, Removed int
	Created        bool
	Deleted        bool
}

// Changed reports whether the file was touched at all.
func (d FileDelta) Changed() bool {
	return d.Added != 0 || d.Removed != 0 || d.Created || d.Deleted
}

// CostReport quantifies a port.
type CostReport struct {
	// PerFile maps path to its delta; untouched files are absent.
	PerFile map[string]FileDelta
}

// FilesTouched counts edited files.
func (r *CostReport) FilesTouched() int { return len(r.PerFile) }

// LinesTouched sums added+removed lines.
func (r *CostReport) LinesTouched() (added, removed int) {
	for _, d := range r.PerFile {
		added += d.Added
		removed += d.Removed
	}
	return
}

// String renders a sorted cost summary.
func (r *CostReport) String() string {
	paths := make([]string, 0, len(r.PerFile))
	for p := range r.PerFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var b strings.Builder
	a, rm := r.LinesTouched()
	fmt.Fprintf(&b, "%d file(s) touched, +%d/-%d line(s)\n", len(paths), a, rm)
	for _, p := range paths {
		d := r.PerFile[p]
		switch {
		case d.Created:
			fmt.Fprintf(&b, "  A %s (+%d)\n", p, d.Added)
		case d.Deleted:
			fmt.Fprintf(&b, "  D %s (-%d)\n", p, d.Removed)
		default:
			fmt.Fprintf(&b, "  M %s (+%d/-%d)\n", p, d.Added, d.Removed)
		}
	}
	return b.String()
}

// Diff computes the edit cost between two file trees using per-file LCS
// line diffs.
func Diff(before, after map[string]string) *CostReport {
	rep := &CostReport{PerFile: map[string]FileDelta{}}
	for p, b := range before {
		a, ok := after[p]
		if !ok {
			rep.PerFile[p] = FileDelta{Removed: lineCount(b), Deleted: true}
			continue
		}
		if a == b {
			continue
		}
		add, rem := diffLines(strings.Split(b, "\n"), strings.Split(a, "\n"))
		rep.PerFile[p] = FileDelta{Added: add, Removed: rem}
	}
	for p, a := range after {
		if _, ok := before[p]; !ok {
			rep.PerFile[p] = FileDelta{Added: lineCount(a), Created: true}
		}
	}
	return rep
}

func lineCount(s string) int { return len(strings.Split(s, "\n")) }

// diffLines returns (added, removed) line counts via an LCS computation.
func diffLines(before, after []string) (added, removed int) {
	n, m := len(before), len(after)
	// Classic DP; environment files are small (hundreds of lines).
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			if before[i-1] == after[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	lcs := prev[m]
	return m - lcs, n - lcs
}

// ---- application ----

// EnvTree materialises only the environment-owned files of a system (the
// module environments), excluding the global layer: porting cost counts
// what the verification team edits, and the global layer is not theirs.
func EnvTree(s *sysenv.System) map[string]string {
	tree := map[string]string{}
	for _, e := range s.Envs() {
		for p, c := range e.Materialise() {
			tree[p] = c
		}
	}
	return tree
}

// Result is the outcome of applying a change list.
type Result struct {
	Changes []Change
	Cost    *CostReport
}

// ApplyAll applies the changes to the system in order and reports the
// total abstraction-layer edit cost.
func ApplyAll(s *sysenv.System, changes ...Change) (*Result, error) {
	before := EnvTree(s)
	for _, c := range changes {
		if err := c.Apply(s); err != nil {
			return nil, fmt.Errorf("port: applying %s: %w", c.Name(), err)
		}
	}
	after := EnvTree(s)
	return &Result{Changes: changes, Cost: Diff(before, after)}, nil
}

// ---- re-verification ----

// VerifyStatus is the outcome of re-running the suite around a port.
type VerifyStatus struct {
	// Pass and Fail count cells; build/link errors count as failures.
	Pass, Fail int
	// Failures describes each non-passing cell.
	Failures []string
}

// Reverify runs every test cell of the system on the given derivatives
// and platform kinds — the paper's "re-verify the ported environment"
// step. It builds through the supplied cache context, so a
// re-verification right after a port re-assembles only what the port
// actually changed (the abstraction layers), while the untouched global
// units and test sources hit the cache. Pass a zero BuildContext to run
// uncached. Defaults: the whole family on the golden model.
func Reverify(s *sysenv.System, bc sysenv.BuildContext, derivs []*derivative.Derivative, kinds []platform.Kind, spec platform.RunSpec) *VerifyStatus {
	if len(derivs) == 0 {
		derivs = derivative.Family()
	}
	if len(kinds) == 0 {
		kinds = []platform.Kind{platform.KindGolden}
	}
	st := &VerifyStatus{}
	for _, d := range derivs {
		for _, e := range s.Envs() {
			for _, id := range e.TestIDs() {
				for _, k := range kinds {
					res, err := s.RunTestWith(bc, e.Module, id, d, k, spec)
					switch {
					case err != nil:
						st.Fail++
						st.Failures = append(st.Failures,
							fmt.Sprintf("%s/%s on %s/%s: %v", e.Module, id, d.Name, k, err))
					case !res.Passed():
						st.Fail++
						st.Failures = append(st.Failures,
							fmt.Sprintf("%s/%s on %s/%s: %s mbox=0x%08x %s",
								e.Module, id, d.Name, k, res.Reason, res.MboxResult, res.Detail))
					default:
						st.Pass++
					}
				}
			}
		}
	}
	return st
}

// FamilyChanges returns the canonical change list that ports the shipped
// unported (SC88-A-only) system to the whole derivative family. Applying
// it to content.UnportedSystem yields an environment equivalent in
// behaviour to content.PortedSystem.
func FamilyChanges() []Change {
	return []Change{
		// SC88-B: the NVM grew; the page field is one bit wider.
		FieldWiden{Module: "NVM", Define: "PAGE_FIELD_SIZE", DerivMacro: "DERIV_B", NewValue: "6"},
		// SC88-C: the page field moved up one bit. (The relocated UART
		// block needs no change: its base flows through the global
		// register definitions under a stable name.)
		FieldShift{Module: "NVM", Define: "PAGE_FIELD_START_POSITION", DerivMacro: "DERIV_C", NewValue: "1"},
		// SC88-SEC accumulates both field changes...
		FieldWiden{Module: "NVM", Define: "PAGE_FIELD_SIZE", DerivMacro: "DERIV_SEC", NewValue: "6"},
		FieldShift{Module: "NVM", Define: "PAGE_FIELD_START_POSITION", DerivMacro: "DERIV_SEC", NewValue: "1"},
		// ...renames the UART data register in the global definitions...
		RegisterRename{Module: "UART", Define: "REG_UART_DR", DerivMacro: "DERIV_SEC",
			NewExpr: "UART_BASE+UART_DATA_OFF"},
		// ...and ships the re-written embedded software (Figure 7).
		ESArgSwap{Wrapper: "Base_Init_Register"},
	}
}
