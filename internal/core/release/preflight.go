package release

import (
	"fmt"

	"repro/internal/core/sysenv"
	"repro/internal/core/vet"
)

// PreflightError reports that a frozen system carries error-severity
// analyzer findings and must not be regressed until they are fixed (or
// explicitly suppressed in the offending tests).
type PreflightError struct {
	Report *vet.Report
}

func (e *PreflightError) Error() string {
	n := e.Report.Errors()
	msg := fmt.Sprintf("release: preflight failed: %d error-severity finding(s)", n)
	for _, f := range e.Report.Findings {
		if f.Severity >= vet.SevError {
			msg += "\n  " + f.String()
		}
	}
	return msg
}

// Preflight verifies a system against its frozen label and then runs the
// static analyzer over it. The analyzer report is returned either way;
// the error is a *PreflightError when any finding has error severity.
// This is the gate a regression passes through before the matrix is
// enumerated: a release that bypasses the abstraction layer is broken by
// construction, however green its runs are today.
func Preflight(s *sysenv.System, sl *SystemLabel, opts vet.Options) (*vet.Report, error) {
	if err := sl.Verify(s); err != nil {
		return nil, err
	}
	r := vet.Check(s, opts)
	if r.Errors() > 0 {
		return r, &PreflightError{Report: r}
	}
	return r, nil
}
