package release

// bundle.go is the certification evidence bundle: the traceability
// matrix, the full static-analysis report, and the regression matrix
// outcomes for a frozen release, sealed under a content hash. The bundle
// is deterministic — the same frozen content and the same matrix verdicts
// produce the same bytes, hash included — so two independent runs of the
// pipeline can attest the same evidence. Wall-clock data (build/run
// times) is deliberately excluded from the matrix cells for exactly that
// reason.

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/core/buildcache"
	"repro/internal/core/sysenv"
	"repro/internal/core/vet"
)

// MatrixCell is one regression-matrix outcome as recorded in the bundle:
// the verdict and its architectural evidence (reason, mailbox word,
// cycle/instruction counts), without the wall-clock fields that would
// break byte-determinism. regress.Report.BundleCells converts a live
// report into this form.
type MatrixCell struct {
	Module     string `json:"module"`
	Test       string `json:"test"`
	Derivative string `json:"derivative"`
	Platform   string `json:"platform"`
	// Status is "passed", "failed", "flaky", or "broken".
	Status     string `json:"status"`
	Reason     string `json:"reason,omitempty"`
	MboxResult uint32 `json:"mbox_result,omitempty"`
	Cycles     uint64 `json:"cycles,omitempty"`
	Insts      uint64 `json:"insts,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// Bundle is the certification evidence for one frozen release.
type Bundle struct {
	// Label and Epoch identify the frozen content the evidence covers.
	Label string `json:"label"`
	Epoch string `json:"epoch"`
	// Requirements is the catalogue the suite was certified against.
	Requirements []sysenv.Requirement `json:"requirements"`
	// Trace is the two-way requirements-to-tests matrix.
	Trace vet.TraceMatrix `json:"trace"`
	// Vet is the full static-analysis report, stack-bound table included.
	Vet *vet.Report `json:"vet"`
	// Matrix is the regression outcome per cell, sorted by
	// (module, test, derivative, platform).
	Matrix []MatrixCell `json:"matrix,omitempty"`
	// Hash seals the bundle: the content hash of everything above with
	// this field blank. Verify recomputes it.
	Hash string `json:"hash"`
}

// hashBundle computes the content hash over the canonical JSON with the
// Hash field blanked.
func hashBundle(b *Bundle) (string, error) {
	c := *b
	c.Hash = ""
	raw, err := json.Marshal(&c)
	if err != nil {
		return "", err
	}
	return buildcache.Key("certbundle", string(raw)), nil
}

// Certify runs the full certification gate over a frozen system and
// seals the evidence bundle. It refuses — returning the preflight error —
// when the analyzer finds anything of error severity, which includes a
// test without a `; REQ:` annotation and a catalogued requirement
// without a covering test. cells may be nil when no regression matrix
// has run yet (a preflight-only bundle).
func Certify(s *sysenv.System, sl *SystemLabel, opts vet.Options, cells []MatrixCell) (*Bundle, error) {
	rep, err := Preflight(s, sl, opts)
	if err != nil {
		return nil, err
	}
	b := &Bundle{
		Label:        sl.Name,
		Epoch:        sl.Epoch(),
		Requirements: s.Requirements(),
		Trace:        vet.Traceability(s),
		Vet:          rep,
		Matrix:       append([]MatrixCell(nil), cells...),
	}
	sort.Slice(b.Matrix, func(i, j int) bool {
		a, c := b.Matrix[i], b.Matrix[j]
		if a.Module != c.Module {
			return a.Module < c.Module
		}
		if a.Test != c.Test {
			return a.Test < c.Test
		}
		if a.Derivative != c.Derivative {
			return a.Derivative < c.Derivative
		}
		return a.Platform < c.Platform
	})
	b.Hash, err = hashBundle(b)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// JSON renders the sealed bundle as indented JSON, byte-identical across
// runs of the same frozen content.
func (b *Bundle) JSON() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// Verify recomputes the content hash and checks the seal.
func (b *Bundle) Verify() error {
	want, err := hashBundle(b)
	if err != nil {
		return err
	}
	if want != b.Hash {
		return fmt.Errorf("release: bundle hash mismatch: sealed %s.., content %s..",
			shortHash(b.Hash), shortHash(want))
	}
	return nil
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	return h
}

// ReadBundle parses a bundle from JSON and verifies its seal.
func ReadBundle(raw []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("release: bad bundle: %w", err)
	}
	if err := b.Verify(); err != nil {
		return nil, err
	}
	return &b, nil
}
