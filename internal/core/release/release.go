// Package release implements the ADVM release-label mechanism of the
// paper's Section 3: a module owner freezes a working version of their
// test environment under a label (a content-hash snapshot), and a system
// regression label is composed of one sub-label per module environment.
// Regressions only run against frozen labels, because "the test
// environment is not stable during any development of the abstraction
// layer, unless frozen via a release label".
package release

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core/buildcache"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
)

// Label freezes one module environment.
type Label struct {
	// Name is the release tag, e.g. "NVM_R1".
	Name string
	// Module is the environment the label freezes.
	Module string
	// Hash is the content hash of the materialised environment tree.
	Hash string
	// Files is the frozen snapshot.
	Files map[string]string
}

// SystemLabel composes module labels into a frozen system regression
// environment. A single person releases it (the paper's release manager).
type SystemLabel struct {
	// Name is the system release tag, e.g. "SYSREG_2004_07".
	Name string
	// Sub maps module name to the frozen module label.
	Sub map[string]*Label
}

// HashTree hashes a file tree deterministically. It delegates to the
// build cache's tree hash so that a frozen label doubles as a cache
// epoch (see SystemLabel.Epoch).
func HashTree(tree map[string]string) string {
	return buildcache.HashTree(tree)
}

// Epoch returns the build-cache epoch of the frozen content: the
// composition of the per-module sub-label hashes. A system that passes
// Verify against this label has exactly this epoch — it is the same
// derivation as sysenv.System.ContentEpoch over the live environments —
// so cache entries written under it are valid for any verified run.
func (sl *SystemLabel) Epoch() string {
	mods := make([]string, 0, len(sl.Sub))
	for m := range sl.Sub {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	parts := []string{"epoch"}
	for _, m := range mods {
		parts = append(parts, m, sl.Sub[m].Hash)
	}
	return buildcache.Key(parts...)
}

// Snapshot freezes a module environment under a label name.
func Snapshot(name string, e *env.Env) *Label {
	tree := e.Materialise()
	files := make(map[string]string, len(tree))
	for p, c := range tree {
		files[p] = c
	}
	return &Label{Name: name, Module: e.Module, Hash: HashTree(tree), Files: files}
}

// Verify checks that an environment still matches the frozen label.
func (l *Label) Verify(e *env.Env) error {
	if e.Module != l.Module {
		return fmt.Errorf("release: label %s freezes module %q, not %q", l.Name, l.Module, e.Module)
	}
	if got := HashTree(e.Materialise()); got != l.Hash {
		return fmt.Errorf("release: module %q has changed since label %s was cut (hash %s.. != %s..)",
			e.Module, l.Name, got[:12], l.Hash[:12])
	}
	return nil
}

// ComposeSystem builds a system label from one sub-label per module
// environment of the system. Every environment must be covered.
func ComposeSystem(name string, s *sysenv.System, subs ...*Label) (*SystemLabel, error) {
	byModule := make(map[string]*Label, len(subs))
	for _, l := range subs {
		if _, dup := byModule[l.Module]; dup {
			return nil, fmt.Errorf("release: two sub-labels for module %q", l.Module)
		}
		byModule[l.Module] = l
	}
	var missing []string
	for _, m := range s.Modules() {
		if _, ok := byModule[m]; !ok {
			missing = append(missing, m)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("release: system label %s missing sub-label(s) for %s",
			name, strings.Join(missing, ", "))
	}
	for m := range byModule {
		if _, ok := s.Env(m); !ok {
			return nil, fmt.Errorf("release: sub-label for unknown module %q", m)
		}
	}
	return &SystemLabel{Name: name, Sub: byModule}, nil
}

// Verify checks that every module environment still matches its frozen
// sub-label.
func (sl *SystemLabel) Verify(s *sysenv.System) error {
	for _, e := range s.Envs() {
		l, ok := sl.Sub[e.Module]
		if !ok {
			return fmt.Errorf("release: system label %s has no sub-label for module %q", sl.Name, e.Module)
		}
		if err := l.Verify(e); err != nil {
			return err
		}
	}
	return nil
}

// String renders the composed label ("SYSREG: NVM=NVM_R1 UART=UART_R2").
func (sl *SystemLabel) String() string {
	mods := make([]string, 0, len(sl.Sub))
	for m := range sl.Sub {
		mods = append(mods, m)
	}
	sort.Strings(mods)
	parts := make([]string, len(mods))
	for i, m := range mods {
		parts[i] = m + "=" + sl.Sub[m].Name
	}
	return sl.Name + ": " + strings.Join(parts, " ")
}

// Registry stores labels by name.
type Registry struct {
	labels map[string]*Label
	system map[string]*SystemLabel
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{labels: map[string]*Label{}, system: map[string]*SystemLabel{}}
}

// Add stores a module label; duplicate names are an error (labels are
// immutable once cut).
func (r *Registry) Add(l *Label) error {
	if _, dup := r.labels[l.Name]; dup {
		return fmt.Errorf("release: label %q already cut", l.Name)
	}
	r.labels[l.Name] = l
	return nil
}

// AddSystem stores a system label.
func (r *Registry) AddSystem(sl *SystemLabel) error {
	if _, dup := r.system[sl.Name]; dup {
		return fmt.Errorf("release: system label %q already cut", sl.Name)
	}
	r.system[sl.Name] = sl
	return nil
}

// Get retrieves a module label.
func (r *Registry) Get(name string) (*Label, bool) {
	l, ok := r.labels[name]
	return l, ok
}

// GetSystem retrieves a system label.
func (r *Registry) GetSystem(name string) (*SystemLabel, bool) {
	sl, ok := r.system[name]
	return sl, ok
}
