package release

import (
	"strings"
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/defines"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
)

func TestSnapshotAndVerify(t *testing.T) {
	e := env.MustNew("NVM")
	e.Defines.MustAdd(defines.Entry{Name: "X", Default: "1"})
	l := Snapshot("NVM_R1", e)
	if l.Module != "NVM" || l.Hash == "" || len(l.Files) == 0 {
		t.Fatalf("label = %+v", l)
	}
	if err := l.Verify(e); err != nil {
		t.Fatalf("fresh label must verify: %v", err)
	}
	// Any abstraction-layer edit invalidates the label.
	if err := e.Defines.SetDefault("X", "2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Verify(e); err == nil {
		t.Error("label must detect drift")
	} else if !strings.Contains(err.Error(), "has changed since") {
		t.Errorf("error text: %v", err)
	}
	// Wrong module.
	if err := l.Verify(env.MustNew("UART")); err == nil {
		t.Error("module mismatch must fail")
	}
}

func TestHashDeterminism(t *testing.T) {
	tree1 := map[string]string{"a": "1", "b": "2"}
	tree2 := map[string]string{"b": "2", "a": "1"}
	if HashTree(tree1) != HashTree(tree2) {
		t.Error("hash must not depend on map order")
	}
	if HashTree(tree1) == HashTree(map[string]string{"a": "1", "b": "3"}) {
		t.Error("different content must hash differently")
	}
	// Path/content confusion must not collide.
	if HashTree(map[string]string{"ab": "c"}) == HashTree(map[string]string{"a": "bc"}) {
		t.Error("path/content boundary collision")
	}
}

func TestComposeSystem(t *testing.T) {
	s := content.PortedSystem()
	var subs []*Label
	for _, e := range s.Envs() {
		subs = append(subs, Snapshot(e.Module+"_R1", e))
	}
	sl, err := ComposeSystem("SYSREG_1", s, subs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := sl.Verify(s); err != nil {
		t.Fatalf("fresh system label must verify: %v", err)
	}
	str := sl.String()
	for _, want := range []string{"SYSREG_1", "NVM=NVM_R1", "UART=UART_R1", "REGISTER=REGISTER_R1"} {
		if !strings.Contains(str, want) {
			t.Errorf("label string missing %q: %s", want, str)
		}
	}

	// Missing sub-label is refused.
	if _, err := ComposeSystem("BAD", s, subs[:2]...); err == nil {
		t.Error("missing sub-label must fail")
	}
	// Duplicate sub-labels for one module are refused.
	if _, err := ComposeSystem("BAD2", s, append(subs, subs[0])...); err == nil {
		t.Error("duplicate sub-label must fail")
	}
	// Unknown module is refused.
	other := sysenv.New("OTHER")
	_ = other.AddEnv(env.MustNew("ZED"))
	zl := Snapshot("Z_R1", mustEnv(other, "ZED"))
	if _, err := ComposeSystem("BAD3", s, append(subs, zl)...); err == nil {
		t.Error("sub-label for foreign module must fail")
	}
}

func mustEnv(s *sysenv.System, name string) *env.Env {
	e, ok := s.Env(name)
	if !ok {
		panic("missing env " + name)
	}
	return e
}

func TestSystemLabelDetectsDrift(t *testing.T) {
	s := content.PortedSystem()
	var subs []*Label
	for _, e := range s.Envs() {
		subs = append(subs, Snapshot(e.Module+"_R1", e))
	}
	sl, err := ComposeSystem("SYSREG_1", s, subs...)
	if err != nil {
		t.Fatal(err)
	}
	e, _ := s.Env("NVM")
	if err := e.Defines.SetDefault("TEST1_TARGET_PAGE", "9"); err != nil {
		t.Fatal(err)
	}
	if err := sl.Verify(s); err == nil {
		t.Error("system label must detect module drift")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	e := env.MustNew("NVM")
	l := Snapshot("R1", e)
	if err := r.Add(l); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(l); err == nil {
		t.Error("labels are immutable: duplicate add must fail")
	}
	if got, ok := r.Get("R1"); !ok || got != l {
		t.Error("registry lookup failed")
	}
	if _, ok := r.Get("R2"); ok {
		t.Error("phantom label")
	}
	sl := &SystemLabel{Name: "S1", Sub: map[string]*Label{"NVM": l}}
	if err := r.AddSystem(sl); err != nil {
		t.Fatal(err)
	}
	if err := r.AddSystem(sl); err == nil {
		t.Error("duplicate system label must fail")
	}
	if got, ok := r.GetSystem("S1"); !ok || got != sl {
		t.Error("system registry lookup failed")
	}
}
