package release

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core/content"
	"repro/internal/core/env"
	"repro/internal/core/sysenv"
	"repro/internal/core/vet"
)

// freeze snapshots every module of a system into a composed label.
func freeze(t *testing.T, name string, s *sysenv.System) *SystemLabel {
	t.Helper()
	var subs []*Label
	for _, e := range s.Envs() {
		subs = append(subs, Snapshot(e.Module+"_R1", e))
	}
	sl, err := ComposeSystem(name, s, subs...)
	if err != nil {
		t.Fatal(err)
	}
	return sl
}

// withTest returns the shipped system with one extra NVM test.
func withTest(t *testing.T, cell env.TestCell) *sysenv.System {
	t.Helper()
	s := content.PortedSystem()
	sys := sysenv.New("SYS")
	for _, m := range s.Modules() {
		e, _ := s.Env(m)
		if m == content.ModuleNVM {
			e = e.Clone()
			e.MustAddTest(cell)
		}
		if err := sys.AddEnv(e); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestPreflightCleanSystem(t *testing.T) {
	s := content.PortedSystem()
	sl := freeze(t, "SYSREG_CLEAN", s)
	r, err := Preflight(s, sl, vet.NewOptions())
	if err != nil {
		t.Fatalf("clean system failed preflight: %v", err)
	}
	if r == nil || r.Errors() != 0 {
		t.Fatalf("report = %v", r)
	}
}

func TestPreflightRejectsViolation(t *testing.T) {
	s := withTest(t, env.TestCell{
		ID: "TEST_NVM_RAW",
		Source: `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 0x80002014
    CALL Base_Report_Pass
`,
	})
	sl := freeze(t, "SYSREG_DIRTY", s)
	r, err := Preflight(s, sl, vet.NewOptions())
	if err == nil {
		t.Fatal("dirty system passed preflight")
	}
	var pe *PreflightError
	if !errors.As(err, &pe) {
		t.Fatalf("error type = %T, want *PreflightError", err)
	}
	if r == nil || r.Errors() == 0 {
		t.Fatal("report not attached or empty")
	}
	if !strings.Contains(err.Error(), vet.CheckRawAddress) {
		t.Errorf("error does not name the failing check: %v", err)
	}
}

func TestPreflightRequiresFrozenMatch(t *testing.T) {
	s := content.PortedSystem()
	sl := freeze(t, "SYSREG_STALE", s)
	drifted := withTest(t, env.TestCell{
		ID:     "TEST_NVM_NEW",
		Source: ".INCLUDE \"Globals.inc\"\ntest_main:\n    CALL Base_Report_Pass\n",
	})
	if _, err := Preflight(drifted, sl, vet.NewOptions()); err == nil {
		t.Fatal("drifted system passed preflight against a stale label")
	}
}

func TestPreflightSuppressionUnblocks(t *testing.T) {
	s := withTest(t, env.TestCell{
		ID: "TEST_NVM_RAW_OK",
		Source: `.INCLUDE "Globals.inc"
test_main:
    LOAD d0, 0x80002014 ; lint:disable layer/raw-address
    CALL Base_Report_Pass
`,
	})
	sl := freeze(t, "SYSREG_SUPPRESSED", s)
	r, err := Preflight(s, sl, vet.NewOptions())
	if err != nil {
		t.Fatalf("suppressed violation still blocks: %v", err)
	}
	if r.Suppressed == 0 {
		t.Error("suppression not recorded in the report")
	}
}
