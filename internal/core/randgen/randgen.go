// Package randgen implements the paper's Section 2 outlook: "this test
// environment structure provides the ability to generate
// constrained-random instances of the 'Global Defines' file from a higher
// level language". Here the higher-level language is Go: a Generator
// draws constrained-random values for selected defines (with weighted
// corner values), renders them into a Globals.inc instance, and tracks
// corner coverage across seeds.
package randgen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core/env"
)

// Constraint bounds one randomised define.
type Constraint struct {
	// Name is the define to randomise (e.g. "TEST1_TARGET_PAGE").
	Name string
	// Min and Max bound the value (inclusive).
	Min, Max int64
	// Corners are high-value boundary cases drawn with CornerWeight
	// probability. Corners outside [Min,Max] are clamped out.
	Corners []int64
	// CornerWeight is the probability of drawing a corner instead of a
	// uniform value; 0 means the default of 0.35.
	CornerWeight float64
}

func (c Constraint) corners() []int64 {
	var out []int64
	for _, v := range c.Corners {
		if v >= c.Min && v <= c.Max {
			out = append(out, v)
		}
	}
	return out
}

// Instance is one random assignment of define values.
type Instance map[string]int64

// Generator draws constrained-random instances.
type Generator struct {
	rng         *rand.Rand
	constraints []Constraint
	index       map[string]int
}

// New creates a generator with a deterministic seed.
func New(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), index: map[string]int{}}
}

// Add registers a constraint. Duplicate names or empty ranges are errors.
func (g *Generator) Add(c Constraint) error {
	if c.Name == "" {
		return fmt.Errorf("randgen: constraint with empty name")
	}
	if _, dup := g.index[c.Name]; dup {
		return fmt.Errorf("randgen: constraint %q already added", c.Name)
	}
	if c.Max < c.Min {
		return fmt.Errorf("randgen: constraint %q has empty range [%d,%d]", c.Name, c.Min, c.Max)
	}
	g.index[c.Name] = len(g.constraints)
	g.constraints = append(g.constraints, c)
	return nil
}

// MustAdd is Add that panics on error.
func (g *Generator) MustAdd(c Constraint) {
	if err := g.Add(c); err != nil {
		panic(err)
	}
}

// Names lists constrained define names in registration order.
func (g *Generator) Names() []string {
	out := make([]string, len(g.constraints))
	for i, c := range g.constraints {
		out[i] = c.Name
	}
	return out
}

// Draw produces one instance.
func (g *Generator) Draw() Instance {
	inst := make(Instance, len(g.constraints))
	for _, c := range g.constraints {
		w := c.CornerWeight
		if w == 0 {
			w = 0.35
		}
		corners := c.corners()
		if len(corners) > 0 && g.rng.Float64() < w {
			inst[c.Name] = corners[g.rng.Intn(len(corners))]
			continue
		}
		span := c.Max - c.Min + 1
		inst[c.Name] = c.Min + g.rng.Int63n(span)
	}
	return inst
}

// Apply writes the instance values into a clone of the environment's
// Global Defines and returns the randomised environment, leaving the
// original untouched (randomised instances are throwaway, never released).
func Apply(e *env.Env, inst Instance) (*env.Env, error) {
	out := e.Clone()
	for name, v := range inst {
		if _, ok := out.Defines.Get(name); !ok {
			return nil, fmt.Errorf("randgen: environment %s has no define %q", e.Module, name)
		}
		if err := out.Defines.SetDefault(name, fmt.Sprintf("%d", v)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// RenderOverlay renders an instance as a standalone include fragment
// (useful for logging what a seed produced).
func (inst Instance) RenderOverlay() string {
	names := make([]string, 0, len(inst))
	for n := range inst {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ";; constrained-random Global Defines instance\n"
	for _, n := range names {
		out += fmt.Sprintf("%s .EQU %d\n", n, inst[n])
	}
	return out
}

// Coverage accumulates which values each define has taken.
type Coverage struct {
	hits map[string]map[int64]int
}

// NewCoverage creates an empty coverage store.
func NewCoverage() *Coverage {
	return &Coverage{hits: map[string]map[int64]int{}}
}

// Record accumulates an instance.
func (cv *Coverage) Record(inst Instance) {
	for n, v := range inst {
		m := cv.hits[n]
		if m == nil {
			m = map[int64]int{}
			cv.hits[n] = m
		}
		m[v]++
	}
}

// Distinct returns how many distinct values a define has taken.
func (cv *Coverage) Distinct(name string) int { return len(cv.hits[name]) }

// Hits returns how often a define took a specific value.
func (cv *Coverage) Hits(name string, v int64) int { return cv.hits[name][v] }

// CornerCoverage returns the fraction of the given corners that have been
// drawn at least once.
func (cv *Coverage) CornerCoverage(name string, corners []int64) float64 {
	if len(corners) == 0 {
		return 1
	}
	hit := 0
	for _, c := range corners {
		if cv.hits[name][c] > 0 {
			hit++
		}
	}
	return float64(hit) / float64(len(corners))
}
