package randgen

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core/content"
	"repro/internal/core/derivative"
	"repro/internal/core/sysenv"
	"repro/internal/platform"

	_ "repro/internal/golden"
)

func TestConstraintValidation(t *testing.T) {
	g := New(1)
	if err := g.Add(Constraint{Name: "", Min: 0, Max: 1}); err == nil {
		t.Error("empty name should fail")
	}
	if err := g.Add(Constraint{Name: "X", Min: 5, Max: 4}); err == nil {
		t.Error("empty range should fail")
	}
	g.MustAdd(Constraint{Name: "X", Min: 0, Max: 10})
	if err := g.Add(Constraint{Name: "X", Min: 0, Max: 1}); err == nil {
		t.Error("duplicate should fail")
	}
	if got := g.Names(); len(got) != 1 || got[0] != "X" {
		t.Errorf("names = %v", got)
	}
}

func TestDrawRespectsBounds(t *testing.T) {
	g := New(7)
	g.MustAdd(Constraint{Name: "P", Min: 0, Max: 31, Corners: []int64{0, 31}})
	g.MustAdd(Constraint{Name: "Q", Min: 3, Max: 3})
	for i := 0; i < 500; i++ {
		inst := g.Draw()
		if v := inst["P"]; v < 0 || v > 31 {
			t.Fatalf("P = %d out of range", v)
		}
		if inst["Q"] != 3 {
			t.Fatalf("Q = %d, want 3", inst["Q"])
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	mk := func(seed int64) []Instance {
		g := New(seed)
		g.MustAdd(Constraint{Name: "P", Min: 0, Max: 100, Corners: []int64{0, 100}})
		var out []Instance
		for i := 0; i < 20; i++ {
			out = append(out, g.Draw())
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i]["P"] != b[i]["P"] {
			t.Fatal("same seed must reproduce the same stream")
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i]["P"] != c[i]["P"] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestCornerWeighting(t *testing.T) {
	g := New(11)
	g.MustAdd(Constraint{Name: "P", Min: 0, Max: 1 << 20, Corners: []int64{0, 1 << 20}, CornerWeight: 0.5})
	cv := NewCoverage()
	for i := 0; i < 400; i++ {
		cv.Record(g.Draw())
	}
	// With 50% corner weight over a huge range, the two corners must
	// dominate relative to any uniform value.
	if cv.CornerCoverage("P", []int64{0, 1 << 20}) != 1 {
		t.Error("corners not covered")
	}
	if cv.Hits("P", 0)+cv.Hits("P", 1<<20) < 100 {
		t.Errorf("corner hits = %d + %d", cv.Hits("P", 0), cv.Hits("P", 1<<20))
	}
	if cv.Distinct("P") < 50 {
		t.Errorf("distinct values = %d; uniform draws missing", cv.Distinct("P"))
	}
}

func TestCoverageProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		g := New(seed)
		g.MustAdd(Constraint{Name: "V", Min: -4, Max: 4, Corners: []int64{-4, 4}})
		cv := NewCoverage()
		total := int(n%50) + 1
		for i := 0; i < total; i++ {
			cv.Record(g.Draw())
		}
		sum := 0
		for v := int64(-4); v <= 4; v++ {
			sum += cv.Hits("V", v)
		}
		return sum == total && cv.Distinct("V") <= 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRenderOverlay(t *testing.T) {
	inst := Instance{"B": 2, "A": 1}
	out := inst.RenderOverlay()
	if !strings.Contains(out, "A .EQU 1") || !strings.Contains(out, "B .EQU 2") {
		t.Errorf("overlay:\n%s", out)
	}
	if strings.Index(out, "A .EQU") > strings.Index(out, "B .EQU") {
		t.Error("overlay must be sorted")
	}
}

// TestE8RandomisedEnvironmentRuns draws constrained-random page targets
// and runs the Figure 6 test with each instance — the paper's envisioned
// constrained-random Global Defines generation, end to end.
func TestE8RandomisedEnvironmentRuns(t *testing.T) {
	s := content.PortedSystem()
	nvm, _ := s.Env("NVM")
	d := derivative.A()
	maxPage := int64(1)<<d.HW.Nvm.PageFieldWidth - 1

	g := New(88)
	g.MustAdd(Constraint{Name: "TEST1_TARGET_PAGE", Min: 0, Max: maxPage,
		Corners: []int64{0, 1, maxPage}})
	cv := NewCoverage()
	for i := 0; i < 12; i++ {
		inst := g.Draw()
		cv.Record(inst)
		re, err := Apply(nvm, inst)
		if err != nil {
			t.Fatal(err)
		}
		sys := sysenv.New("RAND")
		if err := sys.AddEnv(re); err != nil {
			t.Fatal(err)
		}
		res, err := sys.RunTest("NVM", "TEST_NVM_PAGE_SELECT", d, platform.KindGolden, platform.RunSpec{})
		if err != nil {
			t.Fatalf("instance %v: %v", inst, err)
		}
		if !res.Passed() {
			t.Fatalf("instance %v failed: %+v", inst, res)
		}
	}
	if cv.Distinct("TEST1_TARGET_PAGE") < 3 {
		t.Errorf("too few distinct pages: %d", cv.Distinct("TEST1_TARGET_PAGE"))
	}
}

func TestApplyUnknownDefine(t *testing.T) {
	s := content.PortedSystem()
	nvm, _ := s.Env("NVM")
	if _, err := Apply(nvm, Instance{"NO_SUCH_DEFINE": 1}); err == nil {
		t.Error("unknown define must fail")
	}
	// Apply must not mutate the original.
	if _, err := Apply(nvm, Instance{"TEST1_TARGET_PAGE": 3}); err != nil {
		t.Fatal(err)
	}
	if e, _ := nvm.Defines.Get("TEST1_TARGET_PAGE"); e.Default != "8" {
		t.Error("Apply mutated the original environment")
	}
}
