package derivative

import (
	"strings"
	"testing"
)

func TestFamilyShape(t *testing.T) {
	fam := Family()
	if len(fam) != 4 {
		t.Fatalf("family size = %d", len(fam))
	}
	seen := map[string]bool{}
	for _, d := range fam {
		if seen[d.Name] || seen[d.Macro] {
			t.Errorf("duplicate name/macro: %s/%s", d.Name, d.Macro)
		}
		seen[d.Name], seen[d.Macro] = true, true
		if d.HW.Name != d.Name {
			t.Errorf("%s: HW.Name = %q", d.Name, d.HW.Name)
		}
		if len(d.Defines()) != 1 {
			t.Errorf("%s: defines = %v", d.Name, d.Defines())
		}
	}
}

func TestChangeClasses(t *testing.T) {
	a, b, c, sec := A(), B(), C(), SEC()
	// B: widened field, larger NVM, same position.
	if b.HW.Nvm.PageFieldWidth != a.HW.Nvm.PageFieldWidth+1 {
		t.Error("B must widen the page field by one bit")
	}
	if b.HW.Nvm.PageFieldPos != a.HW.Nvm.PageFieldPos {
		t.Error("B must not move the field")
	}
	if b.HW.NvmSize <= a.HW.NvmSize {
		t.Error("B must grow the NVM")
	}
	// C: shifted field, relocated UART, same width.
	if c.HW.Nvm.PageFieldPos != a.HW.Nvm.PageFieldPos+1 {
		t.Error("C must shift the page field by one")
	}
	if c.HW.UartBase == a.HW.UartBase {
		t.Error("C must relocate the UART block")
	}
	// SEC: accumulates both, renames the data register, ships ES v2.
	if sec.HW.Nvm.PageFieldWidth != 6 || sec.HW.Nvm.PageFieldPos != 1 {
		t.Errorf("SEC field geometry: pos=%d width=%d", sec.HW.Nvm.PageFieldPos, sec.HW.Nvm.PageFieldWidth)
	}
	if sec.RegName(RegUartDR) != "UART_DATA_OFF" {
		t.Errorf("SEC must rename UART_DR_OFF, got %s", sec.RegName(RegUartDR))
	}
	if sec.ES != ESv2 || a.ES != ESv1 {
		t.Error("ES versions wrong")
	}
	// Mutating one derivative must not leak into another (deep maps).
	if a2 := A(); a2.RegNames[RegUartDR] != "UART_DR_OFF" {
		t.Error("SEC rename leaked into A")
	}
}

func TestByName(t *testing.T) {
	if d, err := ByName("SC88-B"); err != nil || d.Macro != "DERIV_B" {
		t.Errorf("ByName(SC88-B) = %v, %v", d, err)
	}
	if d, err := ByName("DERIV_C"); err != nil || d.Name != "SC88-C" {
		t.Errorf("ByName(DERIV_C) = %v, %v", d, err)
	}
	if _, err := ByName("SC99"); err == nil {
		t.Error("unknown derivative should error")
	}
	if len(Names()) != 4 {
		t.Errorf("names = %v", Names())
	}
}

func TestRegisterDefsContent(t *testing.T) {
	a := A()
	defs := a.RegisterDefs()
	for _, want := range []string{
		"UART_BASE .EQU 0x80001000",
		"UART_DR_OFF .EQU 0x00000000",
		"NVMC_PAGESEL_OFF .EQU",
		"MBOX_RESULT_OFF .EQU",
		"WDT_SERVICE_OFF .EQU",
		"GLOBAL LAYER",
	} {
		if !strings.Contains(defs, want) {
			t.Errorf("registers.inc missing %q", want)
		}
	}
	// SEC publishes the renamed data register and the relocated base.
	sec := SEC().RegisterDefs()
	if !strings.Contains(sec, "UART_DATA_OFF .EQU") {
		t.Error("SEC registers.inc missing renamed register")
	}
	if strings.Contains(sec, "UART_DR_OFF") {
		t.Error("SEC registers.inc still publishes the old name")
	}
	if !strings.Contains(sec, "UART_BASE .EQU 0x80010000") {
		t.Error("SEC registers.inc missing relocated base")
	}
}

func TestRegNameFallback(t *testing.T) {
	d := A()
	if d.RegName("SOMETHING_ELSE") != "SOMETHING_ELSE" {
		t.Error("unknown canonical name should fall through")
	}
	if d.Nvm().PageSize != 512 {
		t.Errorf("geometry accessor: %+v", d.Nvm())
	}
}
