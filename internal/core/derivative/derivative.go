// Package derivative models the chip-derivative family that the ADVM test
// environment must port across. A Derivative bundles the hardware ground
// truth (the soc.HWConfig the platforms instantiate) with the
// software-visible interface the global layer publishes: register names,
// register addresses, field geometry, and the embedded-software function
// versions. The differences between derivatives are exactly the change
// classes of the paper's Section 4: shifted bit fields, widened bit
// fields, renamed registers, relocated register blocks, and re-written
// embedded-software functions with a changed calling convention.
package derivative

import (
	"fmt"
	"sort"

	"repro/internal/periph"
	"repro/internal/soc"
)

// ESVersion selects the embedded-software implementation generation.
type ESVersion int

// Embedded-software generations.
const (
	// ESv1 passes (value, address) in d0, d1 — the original convention.
	ESv1 ESVersion = 1
	// ESv2 is the re-written embedded software of the paper's Figure 7
	// scenario: "the input registers have been swapped around":
	// (address, value) in d0, d1.
	ESv2 ESVersion = 2
)

// Derivative is one member of the SC88 family.
type Derivative struct {
	// Name is the marketing name ("SC88-A").
	Name string
	// Macro is the preprocessor symbol selecting this derivative in
	// conditional assembly ("DERIV_A").
	Macro string
	// HW is the hardware configuration the platforms instantiate.
	HW soc.HWConfig
	// RegNames maps canonical register identities to the names the
	// global layer publishes for this derivative. A derivative that
	// renames a register (the paper's "register name has been changed
	// for a new derivative") has a different value here.
	RegNames map[string]string
	// ES is the embedded-software generation shipped with the chip.
	ES ESVersion
	// StackBytes is the RAM budget reserved for the call stack on this
	// derivative. The whole-program stack-depth analysis reports each
	// test's worst-case depth against this bound and errors when a test
	// can exceed it.
	StackBytes uint32
}

// Canonical register identities (keys of RegNames). The global layer's
// register-definition file publishes one symbol per identity.
const (
	RegMboxBase  = "MBOX_BASE"
	RegUartBase  = "UART_BASE"
	RegUartDR    = "UART_DR_OFF"
	RegUartSR    = "UART_SR_OFF"
	RegUartCR    = "UART_CR_OFF"
	RegUartBRR   = "UART_BRR_OFF"
	RegNvmcBase  = "NVMC_BASE"
	RegTimerBase = "TIMER_BASE"
	RegIntcBase  = "INTC_BASE"
	RegWdtBase   = "WDT_BASE"
	RegGpioBase  = "GPIO_BASE"
	RegNvmBase   = "NVM_BASE"
	RegMpuBase   = "MPU_BASE"
)

func defaultRegNames() map[string]string {
	return map[string]string{
		RegMboxBase:  "MBOX_BASE",
		RegUartBase:  "UART_BASE",
		RegUartDR:    "UART_DR_OFF",
		RegUartSR:    "UART_SR_OFF",
		RegUartCR:    "UART_CR_OFF",
		RegUartBRR:   "UART_BRR_OFF",
		RegNvmcBase:  "NVMC_BASE",
		RegTimerBase: "TIMER_BASE",
		RegIntcBase:  "INTC_BASE",
		RegWdtBase:   "WDT_BASE",
		RegGpioBase:  "GPIO_BASE",
		RegNvmBase:   "NVM_BASE",
		RegMpuBase:   "MPU_BASE",
	}
}

// A builds the SC88-A baseline derivative.
func A() *Derivative {
	return &Derivative{
		Name:     "SC88-A",
		Macro:    "DERIV_A",
		HW:       soc.DefaultConfig(),
		RegNames: defaultRegNames(),
		ES:       ESv1,
		// A reserves the top 4 KiB of its 64 KiB RAM for the stack.
		StackBytes: 4096,
	}
}

// B is the capacity derivative: the NVM grew, so the page-select field is
// one bit wider (the paper's "capable of handling more pages ... field
// size has increased by one bit").
func B() *Derivative {
	d := A()
	d.Name = "SC88-B"
	d.Macro = "DERIV_B"
	d.HW.Name = d.Name
	d.HW.DerivID = 0xB0
	d.HW.NvmSize = 256 << 10 // twice the NVM
	d.HW.Nvm.PageFieldWidth = 6
	return d
}

// C is the spec-change derivative: the page field moved up by one bit
// (the paper's "location of these control bits have been shifted by
// one"), and the UART register block was relocated.
func C() *Derivative {
	d := A()
	d.Name = "SC88-C"
	d.Macro = "DERIV_C"
	d.HW.Name = d.Name
	d.HW.DerivID = 0xC0
	d.HW.Nvm.PageFieldPos = 1
	d.HW.UartBase = 0x8001_0000 // relocated block
	return d
}

// SEC is the security derivative: it accumulates B's and C's hardware
// changes, renames the UART data register in the published definitions,
// and ships the re-written embedded software with swapped input registers
// (the paper's Figure 7 scenario).
func SEC() *Derivative {
	d := A()
	d.Name = "SC88-SEC"
	d.Macro = "DERIV_SEC"
	d.HW.Name = d.Name
	d.HW.DerivID = 0x5E
	d.HW.NvmSize = 256 << 10
	d.HW.Nvm.PageFieldWidth = 6
	d.HW.Nvm.PageFieldPos = 1
	d.HW.UartBase = 0x8001_0000
	d.RegNames[RegUartDR] = "UART_DATA_OFF" // renamed register
	d.ES = ESv2
	// The security derivative partitions RAM between privilege domains
	// and leaves the test stack half the budget of the open parts.
	d.StackBytes = 2048
	return d
}

// Family returns the standard four derivatives in release order.
func Family() []*Derivative {
	return []*Derivative{A(), B(), C(), SEC()}
}

// ByName finds a family derivative.
func ByName(name string) (*Derivative, error) {
	for _, d := range Family() {
		if d.Name == name || d.Macro == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("derivative %q unknown (have %v)", name, Names())
}

// Names lists the family names.
func Names() []string {
	var out []string
	for _, d := range Family() {
		out = append(out, d.Name)
	}
	return out
}

// Nvm returns the derivative's NVM geometry.
func (d *Derivative) Nvm() periph.NvmGeometry { return d.HW.Nvm }

// RegName resolves a canonical register identity to this derivative's
// published name, falling back to the identity itself.
func (d *Derivative) RegName(canonical string) string {
	if n, ok := d.RegNames[canonical]; ok {
		return n
	}
	return canonical
}

// RegisterDefs renders the global layer's register-definition include
// file for this derivative ("Global Control & Status Register
// Definitions" in Figure 1). Test environments must not include it
// directly; the abstraction layer re-maps its names through Globals.inc.
func (d *Derivative) RegisterDefs() string {
	type def struct {
		name string
		val  uint32
	}
	defs := []def{
		{d.RegName(RegMboxBase), d.HW.MboxBase},
		{d.RegName(RegUartBase), d.HW.UartBase},
		{d.RegName(RegUartDR), periph.UartDR},
		{d.RegName(RegUartSR), periph.UartSR},
		{d.RegName(RegUartCR), periph.UartCR},
		{d.RegName(RegUartBRR), periph.UartBRR},
		{d.RegName(RegNvmcBase), d.HW.NvmcBase},
		{d.RegName(RegTimerBase), d.HW.TimerBase},
		{d.RegName(RegIntcBase), d.HW.IntcBase},
		{d.RegName(RegWdtBase), d.HW.WdtBase},
		{d.RegName(RegGpioBase), d.HW.GpioBase},
		{d.RegName(RegNvmBase), d.HW.NvmBase},
		{d.RegName(RegMpuBase), d.HW.MpuBase},
		// Register offsets within the peripheral blocks (stable names).
		{"MBOX_RESULT_OFF", periph.MboxResult},
		{"MBOX_MAGIC_OFF", periph.MboxMagic},
		{"MBOX_CHAROUT_OFF", periph.MboxCharOut},
		{"MBOX_CHECKPT_OFF", periph.MboxCheckpt},
		{"MBOX_COUNT_OFF", periph.MboxCount},
		{"NVMC_CTRL_OFF", periph.NvmCtrl},
		{"NVMC_STAT_OFF", periph.NvmStat},
		{"NVMC_ADDR_OFF", periph.NvmAddr},
		{"NVMC_DATA_OFF", periph.NvmData},
		{"NVMC_KEY_OFF", periph.NvmKey},
		{"NVMC_PAGESEL_OFF", periph.NvmPagesel},
		{"TIMER_CNT_OFF", periph.TimerCnt},
		{"TIMER_RELOAD_OFF", periph.TimerReload},
		{"TIMER_CTRL_OFF", periph.TimerCtrl},
		{"TIMER_STAT_OFF", periph.TimerStat},
		{"INTC_ENABLE_OFF", periph.IntcEnable},
		{"INTC_PENDING_OFF", periph.IntcPending},
		{"INTC_ACTIVE_OFF", periph.IntcActive},
		{"INTC_ACK_OFF", periph.IntcAck},
		{"INTC_SRC_OFF", periph.IntcSrc},
		{"WDT_CTRL_OFF", periph.WdtCtrl},
		{"WDT_SERVICE_OFF", periph.WdtService},
		{"WDT_COUNT_OFF", periph.WdtCount},
		{"WDT_PERIOD_OFF", periph.WdtPeriod},
		{"GPIO_OUT_OFF", periph.GpioOut},
		{"GPIO_IN_OFF", periph.GpioIn},
		{"GPIO_DIR_OFF", periph.GpioDir},
		{"GPIO_IRQE_OFF", periph.GpioIrqE},
		{"MPU_LO_OFF", periph.MpuLo},
		{"MPU_HI_OFF", periph.MpuHi},
		{"MPU_CTRL_OFF", periph.MpuCtrl},
		{"MPU_STAT_OFF", periph.MpuStat},
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].name < defs[j].name })
	out := fmt.Sprintf(";; register definitions for %s (GLOBAL LAYER - do not include from tests)\n", d.Name)
	for _, df := range defs {
		out += fmt.Sprintf("%s .EQU 0x%08X\n", df.name, df.val)
	}
	return out
}

// Defines returns the preprocessor defines that select this derivative
// when assembling.
func (d *Derivative) Defines() map[string]string {
	return map[string]string{d.Macro: ""}
}
