// Package basefuncs models the ADVM 'Base Functions' component of the
// abstraction layer (Figure 1): the library of assembler functions shared
// by all tests of a module environment. Functions that need global-layer
// services wrap them instead of letting tests call them directly, so a
// re-written embedded-software routine (the paper's Figure 7 scenario) is
// absorbed by re-factoring one wrapper body rather than every test.
package basefuncs

import (
	"fmt"
	"strings"
)

// Function is one base function.
type Function struct {
	// Name is the assembler label tests call (convention: Base_*).
	Name string
	// Doc describes the function for the library listing.
	Doc string
	// Params documents the register calling convention.
	Params string
	// Body is the assembler body, without the leading label and without
	// the trailing RET (added by the renderer). It may use Globals.inc
	// names and conditional assembly.
	Body string
	// WrapsGlobal names the global-layer function this wrapper
	// encapsulates, if any; the lint checker uses it to verify that
	// tests never call the global function directly.
	WrapsGlobal string
	// SavesRA: the renderer brackets the body with PUSH ra / POP ra so
	// the wrapper may CALL other functions.
	SavesRA bool
}

func (f *Function) clone() *Function {
	c := *f
	return &c
}

// Library is an ordered base-function collection.
type Library struct {
	funcs []*Function
	index map[string]*Function
}

// NewLibrary creates an empty library.
func NewLibrary() *Library {
	return &Library{index: make(map[string]*Function)}
}

// Clone deep-copies the library.
func (l *Library) Clone() *Library {
	out := NewLibrary()
	for _, f := range l.funcs {
		c := f.clone()
		out.funcs = append(out.funcs, c)
		out.index[c.Name] = c
	}
	return out
}

// Len returns the function count.
func (l *Library) Len() int { return len(l.funcs) }

// Names lists functions in definition order.
func (l *Library) Names() []string {
	out := make([]string, len(l.funcs))
	for i, f := range l.funcs {
		out[i] = f.Name
	}
	return out
}

// Add appends a function; duplicate names are an error.
func (l *Library) Add(f Function) error {
	if f.Name == "" {
		return fmt.Errorf("basefuncs: function with empty name")
	}
	if _, dup := l.index[f.Name]; dup {
		return fmt.Errorf("basefuncs: %q already defined", f.Name)
	}
	c := f.clone()
	l.funcs = append(l.funcs, c)
	l.index[c.Name] = c
	return nil
}

// MustAdd is Add that panics on error, for static construction.
func (l *Library) MustAdd(f Function) {
	if err := l.Add(f); err != nil {
		panic(err)
	}
}

// Get returns a function by name.
func (l *Library) Get(name string) (*Function, bool) {
	f, ok := l.index[name]
	return f, ok
}

// Replace swaps a function's definition — the single-point-of-change
// re-factor of the paper's Figure 7.
func (l *Library) Replace(f Function) error {
	old, ok := l.index[f.Name]
	if !ok {
		return fmt.Errorf("basefuncs: %q not defined", f.Name)
	}
	*old = *f.clone()
	return nil
}

// WrappedGlobals lists the global-layer functions encapsulated by this
// library, for the lint checker.
func (l *Library) WrappedGlobals() []string {
	var out []string
	for _, f := range l.funcs {
		if f.WrapsGlobal != "" {
			out = append(out, f.WrapsGlobal)
		}
	}
	return out
}

// Render emits Base_Functions.asm. The file includes Globals.inc so that
// function bodies are controlled by the same defines as the tests — the
// property the paper calls out as essential ("these functions do not
// contain hardwired values").
func (l *Library) Render(module string) string {
	var b strings.Builder
	fmt.Fprintf(&b, ";; Base_Functions.asm -- ADVM base functions for module %s\n", module)
	b.WriteString(";; GENERATED: tests call these wrappers; never the global layer directly.\n")
	b.WriteString(".INCLUDE \"Globals.inc\"\n\n")
	for _, f := range l.funcs {
		if f.Doc != "" {
			fmt.Fprintf(&b, "; %s\n", f.Doc)
		}
		if f.Params != "" {
			fmt.Fprintf(&b, "; params: %s\n", f.Params)
		}
		if f.WrapsGlobal != "" {
			fmt.Fprintf(&b, "; wraps global-layer function %s\n", f.WrapsGlobal)
		}
		fmt.Fprintf(&b, "%s:\n", f.Name)
		if f.SavesRA {
			b.WriteString("    PUSH ra\n")
		}
		body := strings.TrimRight(f.Body, "\n")
		for _, line := range strings.Split(body, "\n") {
			b.WriteString(line + "\n")
		}
		if f.SavesRA {
			b.WriteString("    POP ra\n")
		}
		b.WriteString("    RET\n\n")
	}
	return b.String()
}
