package basefuncs

import (
	"strings"
	"testing"
)

func TestAddReplaceAndRender(t *testing.T) {
	l := NewLibrary()
	l.MustAdd(Function{
		Name: "Base_A", Doc: "does A", Params: "d0 = x",
		Body: "    NOP",
	})
	l.MustAdd(Function{
		Name: "Base_Wrap", WrapsGlobal: "ES_Thing", SavesRA: true,
		Body: "    CALL ES_Thing",
	})
	if err := l.Add(Function{Name: "Base_A"}); err == nil {
		t.Error("duplicate should fail")
	}
	if err := l.Add(Function{}); err == nil {
		t.Error("empty name should fail")
	}
	out := l.Render("NVM")
	for _, want := range []string{
		`.INCLUDE "Globals.inc"`,
		"; does A",
		"; params: d0 = x",
		"; wraps global-layer function ES_Thing",
		"Base_A:",
		"Base_Wrap:",
		"    PUSH ra",
		"    POP ra",
		"    RET",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Replace changes the body in place (single point of change).
	if err := l.Replace(Function{Name: "Base_A", Body: "    HALT"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Replace(Function{Name: "Base_Zed"}); err == nil {
		t.Error("replacing unknown function should fail")
	}
	if f, _ := l.Get("Base_A"); !strings.Contains(f.Body, "HALT") {
		t.Error("replace did not take effect")
	}
	if got := l.WrappedGlobals(); len(got) != 1 || got[0] != "ES_Thing" {
		t.Errorf("wrapped globals = %v", got)
	}
	if got := l.Names(); len(got) != 2 || got[0] != "Base_A" {
		t.Errorf("names = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	l := NewLibrary()
	l.MustAdd(Function{Name: "F", Body: "    NOP"})
	c := l.Clone()
	if err := c.Replace(Function{Name: "F", Body: "    HALT"}); err != nil {
		t.Fatal(err)
	}
	if f, _ := l.Get("F"); strings.Contains(f.Body, "HALT") {
		t.Error("clone mutated original")
	}
	if c.Len() != 1 {
		t.Errorf("clone len = %d", c.Len())
	}
}
