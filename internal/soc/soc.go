// Package soc assembles the SC88 system-on-chip: memory map, bus, and
// peripheral set, parameterised by a hardware configuration. Derivatives
// of the chip (the paper's SLE88 family members) differ only in their
// HWConfig — relocated peripheral windows, resized NVM page fields, wider
// memories — which is exactly the change surface the ADVM abstraction
// layer is designed to absorb.
package soc

import (
	"repro/internal/bus"
	"repro/internal/mem"
	"repro/internal/periph"
)

// HWConfig is the hardware ground truth for one chip derivative.
type HWConfig struct {
	// Name identifies the derivative (e.g. "SC88-A").
	Name string
	// DerivID is readable by software through the DERIVID core register.
	DerivID uint32

	// Memory map.
	RomBase, RomSize uint32
	RamBase, RamSize uint32
	NvmBase, NvmSize uint32

	// Peripheral window bases (absolute addresses).
	MboxBase  uint32
	UartBase  uint32
	NvmcBase  uint32
	TimerBase uint32
	IntcBase  uint32
	WdtBase   uint32
	GpioBase  uint32
	MpuBase   uint32

	// Nvm is the derivative-specific NVM geometry (the Figure 6 field).
	Nvm periph.NvmGeometry

	// WdtPeriod is the watchdog default period in cycles.
	WdtPeriod uint32

	// Wait states per region name; zero-value entries fall back to the
	// bus default.
	RomWait, RamWait, NvmWait uint64
}

// DefaultConfig returns the SC88-A baseline hardware configuration.
func DefaultConfig() HWConfig {
	return HWConfig{
		Name:      "SC88-A",
		DerivID:   0xA0,
		RomBase:   0x0000_0000,
		RomSize:   128 << 10,
		RamBase:   0x2000_0000,
		RamSize:   64 << 10,
		NvmBase:   0x4000_0000,
		NvmSize:   128 << 10,
		MboxBase:  0x8000_0000,
		UartBase:  0x8000_1000,
		NvmcBase:  0x8000_2000,
		TimerBase: 0x8000_3000,
		IntcBase:  0x8000_4000,
		WdtBase:   0x8000_5000,
		GpioBase:  0x8000_6000,
		MpuBase:   0x8000_7000,
		Nvm: periph.NvmGeometry{
			PageSize:       512,
			PageFieldPos:   0,
			PageFieldWidth: 5,
			ProgramCycles:  24,
			EraseCycles:    96,
		},
		WdtPeriod: 1 << 20,
		RomWait:   1,
		RamWait:   1,
		NvmWait:   3,
	}
}

// Region names used in the memory map.
const (
	RegionRom = "rom"
	RegionRam = "ram"
	RegionNvm = "nvm"
)

// SoC is an instantiated SC88 system.
type SoC struct {
	Cfg   HWConfig
	Mem   *mem.Memory
	Bus   *bus.Bus
	Hub   *periph.IrqHub
	Mbox  *periph.Mailbox
	Uart  *periph.Uart
	Nvmc  *periph.Nvm
	Timer *periph.Timer
	Intc  *periph.Intc
	Wdt   *periph.Wdt
	Gpio  *periph.Gpio
	Mpu   *periph.Mpu
}

// New builds a SoC from the configuration.
func New(cfg HWConfig) *SoC {
	m := &mem.Memory{}
	m.AddRegion(RegionRom, cfg.RomBase, cfg.RomSize, mem.PermRead|mem.PermExec)
	m.AddRegion(RegionRam, cfg.RamBase, cfg.RamSize, mem.PermRead|mem.PermWrite|mem.PermExec)
	m.AddRegion(RegionNvm, cfg.NvmBase, cfg.NvmSize, mem.PermRead)

	b := bus.New(m)
	b.SetWait(RegionRom, cfg.RomWait)
	b.SetWait(RegionRam, cfg.RamWait)
	b.SetWait(RegionNvm, cfg.NvmWait)

	hub := &periph.IrqHub{}
	s := &SoC{
		Cfg:   cfg,
		Mem:   m,
		Bus:   b,
		Hub:   hub,
		Mbox:  periph.NewMailbox(),
		Uart:  periph.NewUart("uart0", hub),
		Nvmc:  periph.NewNvm("nvmc", hub, m, RegionNvm, cfg.Nvm),
		Timer: periph.NewTimer("timer0", hub),
		Intc:  periph.NewIntc("intc", hub),
		Wdt:   periph.NewWdt("wdt", hub, cfg.WdtPeriod),
		Gpio:  periph.NewGpio("gpio", hub),
		Mpu:   periph.NewMpu("mpu"),
	}
	b.Attach(cfg.MboxBase, s.Mbox)
	b.Attach(cfg.UartBase, s.Uart)
	b.Attach(cfg.NvmcBase, s.Nvmc)
	b.Attach(cfg.TimerBase, s.Timer)
	b.Attach(cfg.IntcBase, s.Intc)
	b.Attach(cfg.WdtBase, s.Wdt)
	b.Attach(cfg.GpioBase, s.Gpio)
	b.Attach(cfg.MpuBase, s.Mpu)
	b.SetWriteGuard(s.Mpu.Check)
	return s
}
