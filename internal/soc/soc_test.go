package soc

import (
	"testing"

	"repro/internal/mem"
)

func TestDefaultConfigMapIsConsistent(t *testing.T) {
	s := New(DefaultConfig())
	// All three memory regions exist with the right permissions.
	rom := s.Mem.FindRegion(s.Cfg.RomBase)
	if rom == nil || rom.Perm&mem.PermWrite != 0 || rom.Perm&mem.PermExec == 0 {
		t.Errorf("rom region: %+v", rom)
	}
	ram := s.Mem.FindRegion(s.Cfg.RamBase)
	if ram == nil || ram.Perm&mem.PermWrite == 0 {
		t.Errorf("ram region: %+v", ram)
	}
	nvm := s.Mem.FindRegion(s.Cfg.NvmBase)
	if nvm == nil || nvm.Perm&mem.PermWrite != 0 {
		t.Errorf("nvm must not be directly writable: %+v", nvm)
	}
	// All eight peripherals are attached.
	if got := len(s.Bus.Devices()); got != 8 {
		t.Errorf("devices = %d, want 8", got)
	}
	// Mailbox is reachable through the bus at its configured base.
	v, err := s.Bus.Read32(s.Cfg.MboxBase+0x04, mem.AccessRead)
	if err != nil || v == 0 {
		t.Errorf("mbox magic via bus: %#x %v", v, err)
	}
}

func TestDerivativeRelocationChangesRouting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UartBase = 0x8001_0000
	s := New(cfg)
	// Old address is unmapped; new one routes to the UART.
	if _, err := s.Bus.Read32(0x8000_1000, mem.AccessRead); err == nil {
		t.Error("old UART window should be unmapped")
	}
	if _, err := s.Bus.Read32(0x8001_0004, mem.AccessRead); err != nil {
		t.Errorf("relocated UART SR: %v", err)
	}
}

func TestNvmGeometryFlowsThrough(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nvm.PageFieldPos = 1
	cfg.Nvm.PageFieldWidth = 6
	s := New(cfg)
	if s.Nvmc.Geometry().PageFieldPos != 1 || s.Nvmc.Geometry().PageFieldWidth != 6 {
		t.Errorf("geometry not applied: %+v", s.Nvmc.Geometry())
	}
}
