// Package predecode implements trace-style instruction predecoding for
// the behavioural simulators: each code image is decoded once into a page
// table of ready-to-execute entries, replacing the per-step fetch+decode
// work on the golden and RTL hot paths. Tables for ROM-resident code are
// shared across every core executing the same image (regression cells
// re-run the same linked image on many derivative/platform cells), while
// RAM-resident code gets a private per-core overlay decoded lazily from
// live memory.
//
// Self-modifying code is handled by invalidation, not coherence: a store
// that lands in a decoded page poisons it permanently and every fetch
// from that page falls back to decode-per-step on the live bus, which
// preserves exact fault and trap behaviour. Stores into pages never
// fetched from cost nothing — runtime-copied code decodes on its first
// fetch, after the copy loop has finished writing it.
//
// Cycle fidelity: each entry carries the per-word fetch wait cost the
// bus would charge (Bus.CostOf), so a predecoded step burns exactly the
// cycles a live fetch would. Entries that fail to decode (illegal
// opcodes, truncated extension words at a region edge) stay invalid and
// route to the slow path, which raises the architectural trap.
package predecode

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core/telemetry"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obj"
)

// pageWords is the decode granularity: 256 words = 1 KiB pages, small
// enough that poisoning one self-modified page leaves the rest of the
// region fast.
const pageWords = 256

// PageBytes is the address span one decoded page covers.
const PageBytes = pageWords * 4

// Entry is one predecoded instruction slot.
type Entry struct {
	// Inst is the decoded instruction.
	Inst isa.Inst
	// W0 and W1 are the raw instruction words, for paths (the RTL IR
	// signal trace) that must observe the fetched encoding.
	W0, W1 uint32
	// Size is the instruction length in words (1 or 2).
	Size uint32
	// Wait is the per-word fetch wait cost at this address.
	Wait uint64
	// Valid marks a successfully decoded entry; invalid slots force the
	// slow path (which raises the proper trap for illegal encodings).
	Valid bool
}

// Page is one decoded span of pageWords entries. Pages handed out by
// PageFor are immutable, which is what lets cores cache the pointer
// across fetches.
type Page struct {
	entries [pageWords]Entry
}

// EntryAt returns the slot covering a word-aligned fetch off bytes into
// the page, or nil for a slot that failed to decode. Sized to inline
// into simulator fetch loops.
func (p *Page) EntryAt(off uint32) *Entry {
	e := &p.entries[off/4%pageWords]
	if !e.Valid {
		return nil
	}
	return e
}

// poisonPage marks a page that received a store after being decoded:
// decode-per-step territory from then on.
var poisonPage = &Page{}

// Table is a predecoded view of one memory region. The zero-size table
// and the nil table are both inert (every lookup misses).
type Table struct {
	base uint32
	size uint32
	wait uint64
	// read returns the word at an address, or false if the address is
	// outside the backing store (region edge, unmapped image byte).
	read  func(addr uint32) (uint32, bool)
	pages []atomic.Pointer[Page]
}

func newTable(base, size uint32, wait uint64, read func(uint32) (uint32, bool)) *Table {
	t := &Table{base: base, size: size, wait: wait, read: read}
	t.pages = make([]atomic.Pointer[Page], (int(size)/4+pageWords-1)/pageWords)
	return t
}

// Lookup returns the predecoded entry for a fetch at pc, or nil when the
// caller must take the slow path: pc outside the table, misaligned,
// poisoned page, or an entry that failed to decode. The body is sized to
// inline into the simulator fetch loops; first-touch page decode lives
// in lookupCold. (pc < t.base folds into the one unsigned compare:
// pc-t.base wraps past size.)
func (t *Table) Lookup(pc uint32) *Entry {
	if t == nil || pc&3 != 0 || pc-t.base >= t.size {
		return nil
	}
	w := (pc - t.base) / 4
	p := t.pages[w/pageWords].Load()
	if p == nil || p == poisonPage {
		return t.lookupCold(w, p)
	}
	e := &p.entries[w%pageWords]
	if !e.Valid {
		return nil
	}
	return e
}

// PageFor returns the decoded page containing pc and the page's base
// address, decoding it on first touch; nil for addresses outside the
// table or poisoned pages. It exists for cores that keep a one-page
// fetch cache: returned pages are immutable, but only ROM tables
// guarantee a page is never later poisoned, so overlay (RAM) pages must
// not be cached across stores.
func (t *Table) PageFor(pc uint32) (*Page, uint32) {
	if t == nil || pc-t.base >= t.size {
		return nil, 0
	}
	w := (pc - t.base) / 4
	p := t.pages[w/pageWords].Load()
	if p == nil {
		p = t.decodePage(int(w / pageWords))
	}
	if p == nil || p == poisonPage {
		return nil, 0
	}
	return p, t.base + w/pageWords*PageBytes
}

func (t *Table) lookupCold(w uint32, p *Page) *Entry {
	if p == nil {
		p = t.decodePage(int(w / pageWords))
	}
	if p == nil || p == poisonPage {
		return nil
	}
	e := &p.entries[w%pageWords]
	if !e.Valid {
		return nil
	}
	return e
}

func (t *Table) decodePage(pi int) *Page {
	p := &Page{}
	start := t.base + uint32(pi)*pageWords*4
	for i := 0; i < pageWords; i++ {
		a := start + uint32(i)*4
		if a-t.base >= t.size {
			break
		}
		w0, ok := t.read(a)
		if !ok {
			continue
		}
		e := &p.entries[i]
		if isa.Opcode(w0 >> 24).HasExt() {
			w1, ok := t.read(a + 4)
			if !ok {
				continue // extension word past the region edge: slow path
			}
			in, size, dok := isa.Decode([]uint32{w0, w1})
			if !dok || size != 2 {
				continue
			}
			*e = Entry{Inst: in, W0: w0, W1: w1, Size: 2, Wait: t.wait, Valid: true}
		} else {
			in, size, dok := isa.Decode([]uint32{w0})
			if !dok || size != 1 {
				continue
			}
			*e = Entry{Inst: in, W0: w0, Size: 1, Wait: t.wait, Valid: true}
		}
	}
	if t.pages[pi].CompareAndSwap(nil, p) {
		countPageDecoded()
		return p
	}
	// Another core decoded (or a store poisoned) the page first.
	cur := t.pages[pi].Load()
	if cur == poisonPage {
		return nil
	}
	return cur
}

// Invalidate poisons any decoded page whose entries a store at addr could
// have covered (an entry starting up to 4 bytes before the store can span
// the stored bytes). Pages never decoded stay undecoded — runtime-copied
// code is not penalised by its own copy loop.
func (t *Table) Invalidate(addr uint32) {
	if t == nil {
		return
	}
	lo := int64(addr) - 4
	hi := int64(addr) + 3
	base, size := int64(t.base), int64(t.size)
	if hi < base || lo >= base+size {
		return
	}
	loPage := (max64(lo, base) - base) / 4 / pageWords
	hiPage := (min64(hi, base+size-1) - base) / 4 / pageWords
	for pi := loPage; pi <= hiPage; pi++ {
		if p := t.pages[pi].Load(); p != nil && p != poisonPage {
			if t.pages[pi].CompareAndSwap(p, poisonPage) {
				countPagePoisoned()
			}
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// romKey identifies one shared ROM decode: same image object, same
// placement, same wait states. Image bytes are immutable after linking,
// so every SoC loading this image sees identical ROM content and the
// table is safely shared across cores and goroutines.
type romKey struct {
	img        *obj.Image
	base, size uint32
	wait       uint64
}

var romTables sync.Map // romKey -> *Table

// ForImage returns the shared predecode table for an image's ROM
// placement, building it (lazily, page by page) on first use. Tables are
// keyed by image identity: regression cells running the same linked
// image decode it once, not once per cell.
func ForImage(img *obj.Image, base, size uint32, wait uint64) *Table {
	if img == nil || size == 0 {
		return nil
	}
	k := romKey{img: img, base: base, size: size, wait: wait}
	if v, ok := romTables.Load(k); ok {
		return v.(*Table)
	}
	t := newTable(base, size, wait, imageReader(img, base, size))
	v, _ := romTables.LoadOrStore(k, t)
	return v.(*Table)
}

// imageReader reads words from the image's segments as they would appear
// in a freshly loaded region: segment bytes where covered, zero filler
// elsewhere inside the region.
func imageReader(img *obj.Image, base, size uint32) func(uint32) (uint32, bool) {
	return func(addr uint32) (uint32, bool) {
		if addr < base || uint64(addr)-uint64(base)+4 > uint64(size) {
			return 0, false
		}
		var b [4]byte
		for i := uint32(0); i < 4; i++ {
			b[i] = imageByte(img, addr+i)
		}
		return binary.LittleEndian.Uint32(b[:]), true
	}
}

func imageByte(img *obj.Image, addr uint32) byte {
	for i := range img.Segments {
		s := &img.Segments[i]
		if addr >= s.Addr && uint64(addr) < uint64(s.Addr)+uint64(len(s.Data)) {
			return s.Data[addr-s.Addr]
		}
	}
	return 0
}

// NewOverlay returns a private table over a writable region (RAM),
// decoding pages lazily from live memory. Unlike ROM tables it is per
// core: RAM contents are runtime state. The core must call Invalidate on
// every store.
func NewOverlay(m *mem.Memory, base, size uint32, wait uint64) *Table {
	if m == nil || size == 0 {
		return nil
	}
	return newTable(base, size, wait, func(addr uint32) (uint32, bool) {
		if addr < base || uint64(addr)-uint64(base)+4 > uint64(size) {
			return 0, false
		}
		b, err := m.Dump(addr, 4)
		if err != nil {
			return 0, false
		}
		return binary.LittleEndian.Uint32(b), true
	})
}

// Package-wide counters. Page events are rare and counted at the source;
// per-step hit/miss counts are accumulated in plain core-local fields and
// flushed here once per run (AddRunStats) to keep atomics off the
// simulator hot path. The counters are atomics, so concurrent matrix
// workers can flush at the same time without racing; idempotence is the
// caller's half of the contract — cores must zero their local counts in
// the same motion as the flush (copy-then-zero), so a duplicate flush
// adds zero instead of double-counting a run.
var stats struct {
	hits, slow, pagesDecoded, pagesPoisoned atomic.Uint64
}

// metrics, when installed, mirrors every counter update into a
// telemetry registry so aggregation across workers goes through the
// race-safe metrics layer rather than ad-hoc package globals.
var metrics atomic.Pointer[telemetry.Registry]

// SetMetrics installs a telemetry registry that the package counters are
// mirrored into, under predecode.fetches / predecode.slow /
// predecode.pages_decoded / predecode.pages_poisoned. Pass nil to detach.
func SetMetrics(r *telemetry.Registry) { metrics.Store(r) }

// AddRunStats folds one run's fetch counters into the global totals.
// Safe to call from concurrent workers.
func AddRunStats(hits, slow uint64) {
	if hits == 0 && slow == 0 {
		return
	}
	if hits != 0 {
		stats.hits.Add(hits)
	}
	if slow != 0 {
		stats.slow.Add(slow)
	}
	if r := metrics.Load(); r != nil {
		r.Counter("predecode.fetches").Add(hits)
		r.Counter("predecode.slow").Add(slow)
	}
}

// countPageDecoded/countPagePoisoned record the page-granularity events
// at their source, mirroring into the registry when installed.
func countPageDecoded() {
	stats.pagesDecoded.Add(1)
	if r := metrics.Load(); r != nil {
		r.Counter("predecode.pages_decoded").Inc()
	}
}

func countPagePoisoned() {
	stats.pagesPoisoned.Add(1)
	if r := metrics.Load(); r != nil {
		r.Counter("predecode.pages_poisoned").Inc()
	}
}

// Stats is a snapshot of the package counters.
type Stats struct {
	// Hits counts instruction fetches served from a predecode table;
	// Slow counts fetches that went down the decode-per-step path
	// (predecode disabled, invalid entries, poisoned pages).
	Hits, Slow uint64
	// PagesDecoded and PagesPoisoned count page-granularity events.
	PagesDecoded, PagesPoisoned uint64
}

// GlobalStats snapshots the process-wide counters.
func GlobalStats() Stats {
	return Stats{
		Hits:          stats.hits.Load(),
		Slow:          stats.slow.Load(),
		PagesDecoded:  stats.pagesDecoded.Load(),
		PagesPoisoned: stats.pagesPoisoned.Load(),
	}
}

// ResetStats zeroes the global counters (benchmarks and tests).
func ResetStats() {
	stats.hits.Store(0)
	stats.slow.Store(0)
	stats.pagesDecoded.Store(0)
	stats.pagesPoisoned.Store(0)
}

func (s Stats) String() string {
	total := s.Hits + s.Slow
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(s.Hits) / float64(total)
	}
	return fmt.Sprintf("%d fetches predecoded (%.1f%%), %d slow, %d pages decoded, %d poisoned",
		s.Hits, pct, s.Slow, s.PagesDecoded, s.PagesPoisoned)
}
