package predecode_test

import (
	"testing"

	"repro/internal/golden"
	"repro/internal/platform"
	"repro/internal/rtl"
	"repro/internal/soc"
	"repro/internal/testprog"
)

// selfModProgram copies a thunk from ROM into RAM and calls it twice.
// On its first call the thunk loads 0x1111 into d3 and then overwrites
// its own first instruction (in a page the predecoder has already
// decoded) with the encoding of "LOAD d3, 0x2222", taken verbatim from
// a never-executed ROM copy so the test does not depend on instruction
// encodings. The second call must observe the patched code. This
// exercises both predecode paths: the RAM overlay decodes the copied
// thunk on first fetch, and the self-modifying store poisons the page
// so later fetches fall back to decode-per-step.
const selfModProgram = `
DEST .EQU 0x20000400
_main:
    LOAD a0, thunk
    LOAD a1, DEST
    LOAD d0, thunk
    LOAD d1, thunk_end
    SUB d2, d1, d0          ; thunk size in bytes
    LOAD d4, 0
copy:
    LOAD d3, [a0]
    STORE [a1], d3
    LEAO a0, a0, 4
    LEAO a1, a1, 4
    SUB d2, d2, 4
    BNE d2, d4, copy
    LOAD a7, DEST
    CALLI a7                ; first call: unpatched thunk
    LOAD d4, 0x1111
    BNE d3, d4, fail
    CALLI a7                ; second call: thunk patched itself
    LOAD d4, 0x2222
    BNE d3, d4, fail
    JMP pass
thunk:
    LOAD d3, 0x1111
    LOAD a6, DEST
    LOAD a5, newinst
    LOAD d5, [a5]
    STORE [a6], d5          ; patch own first instruction
    RET
thunk_end:
newinst:
    LOAD d3, 0x2222         ; data: replacement encoding, never executed
` + testprog.PassTail

// runSelfMod loads and runs the self-modifying program on p.
func runSelfMod(t *testing.T, p platform.Platform) *platform.Result {
	t.Helper()
	cfg := soc.DefaultConfig()
	img, err := testprog.Build(cfg, nil, map[string]string{"selfmod.asm": selfModProgram})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Load(img); err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := p.Run(platform.RunSpec{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

// TestSelfModifyingCodeGolden checks that a program that stores into its
// own (already predecoded) code page executes correctly on the golden
// model, and that the predecode fast path does not change the reported
// instruction or cycle counts.
func TestSelfModifyingCodeGolden(t *testing.T) {
	cfg := soc.DefaultConfig()

	fast := runSelfMod(t, golden.NewModel(cfg))
	if !fast.Passed() {
		t.Fatalf("predecode on: not passed: %+v", fast)
	}

	slow := golden.NewModel(cfg)
	slow.Core().PredecodeOff = true
	ref := runSelfMod(t, slow)
	if !ref.Passed() {
		t.Fatalf("predecode off: not passed: %+v", ref)
	}

	if fast.Instructions != ref.Instructions || fast.Cycles != ref.Cycles {
		t.Errorf("predecode changed counts: on=(%d insts, %d cycles) off=(%d insts, %d cycles)",
			fast.Instructions, fast.Cycles, ref.Instructions, ref.Cycles)
	}
	if fast.MboxResult != ref.MboxResult {
		t.Errorf("mailbox result differs: on=%#x off=%#x", fast.MboxResult, ref.MboxResult)
	}
}

// TestSelfModifyingCodeRTL is the same check against the cycle-true RTL
// simulation: the predecoded fetch path must burn exactly the wait
// states of the FSM it bypasses.
func TestSelfModifyingCodeRTL(t *testing.T) {
	cfg := soc.DefaultConfig()

	fast := runSelfMod(t, rtl.NewSim(cfg))
	if !fast.Passed() {
		t.Fatalf("predecode on: not passed: %+v", fast)
	}

	slow := rtl.NewSim(cfg)
	slow.DisablePredecode()
	ref := runSelfMod(t, slow)
	if !ref.Passed() {
		t.Fatalf("predecode off: not passed: %+v", ref)
	}

	if fast.Instructions != ref.Instructions || fast.Cycles != ref.Cycles {
		t.Errorf("predecode changed counts: on=(%d insts, %d cycles) off=(%d insts, %d cycles)",
			fast.Instructions, fast.Cycles, ref.Instructions, ref.Cycles)
	}
	if fast.MboxResult != ref.MboxResult {
		t.Errorf("mailbox result differs: on=%#x off=%#x", fast.MboxResult, ref.MboxResult)
	}
}
