package predecode

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/core/telemetry"

	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obj"
)

// words encodes a program into a little-endian byte image.
func words(ws ...uint32) []byte {
	b := make([]byte, 4*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint32(b[4*i:], w)
	}
	return b
}

func testImage(base uint32, ws ...uint32) *obj.Image {
	return &obj.Image{
		Entry:    base,
		Segments: []obj.Segment{{Addr: base, Data: words(ws...)}},
	}
}

func TestForImageDecodesAndShares(t *testing.T) {
	const base, size = 0x1000, 0x2000
	prog := []uint32{
		isa.Inst{Op: isa.OpMovI, Imm: 5}.Encode(nil)[0], // MOVI d0, 5
	}
	// Build a real two-word instruction too: MOVX has an extension word.
	movx := isa.Inst{Op: isa.OpMovX, Imm: 0x12345678}.Encode(nil)
	img := testImage(base, append(prog, movx...)...)

	tbl := ForImage(img, base, size, 3)
	if tbl == nil {
		t.Fatal("nil table")
	}
	e := tbl.Lookup(base)
	if e == nil || !e.Valid || e.Size != 1 || e.Wait != 3 {
		t.Fatalf("entry 0: %+v", e)
	}
	if e.Inst.Op != isa.OpMovI || e.Inst.Imm != 5 {
		t.Fatalf("decoded %v", e.Inst)
	}
	e2 := tbl.Lookup(base + 4)
	if e2 == nil || e2.Size != 2 || e2.W1 != movx[1] {
		t.Fatalf("ext entry: %+v", e2)
	}
	if e2.Inst.Op != isa.OpMovX || e2.Inst.Imm != 0x12345678 {
		t.Fatalf("ext decoded %v", e2.Inst)
	}
	// Zero filler decodes as NOP (opcode 0) — valid, like a real fetch.
	if e3 := tbl.Lookup(base + 12); e3 == nil || e3.Inst.Op != isa.OpNop {
		t.Fatalf("filler entry: %+v", e3)
	}
	// Same (image, placement) yields the identical shared table.
	if again := ForImage(img, base, size, 3); again != tbl {
		t.Error("table not shared for identical image+placement")
	}
	// A different wait (another derivative's timing) is a different table.
	if other := ForImage(img, base, size, 5); other == tbl {
		t.Error("tables with different waits must not be shared")
	}
}

func TestLookupMisses(t *testing.T) {
	img := testImage(0x1000, 0xffffffff) // invalid opcode
	tbl := ForImage(img, 0x1000, 0x100, 1)
	cases := []struct {
		name string
		pc   uint32
	}{
		{"invalid encoding", 0x1000},
		{"misaligned", 0x1002},
		{"below base", 0xffc},
		{"past end", 0x1100},
	}
	for _, c := range cases {
		if e := tbl.Lookup(c.pc); e != nil {
			t.Errorf("%s: got entry %+v", c.name, e)
		}
	}
	var nilTbl *Table
	if nilTbl.Lookup(0x1000) != nil {
		t.Error("nil table must miss")
	}
	nilTbl.Invalidate(0x1000) // must not panic
}

func TestTruncatedExtAtRegionEdge(t *testing.T) {
	// A two-word instruction whose extension word falls outside the
	// region must not predecode: the slow path owns the fault.
	movx := isa.Inst{Op: isa.OpMovX, Imm: 1}.Encode(nil)
	img := testImage(0x1000, movx[0])
	tbl := ForImage(img, 0x1000, 4, 1)
	if e := tbl.Lookup(0x1000); e != nil {
		t.Fatalf("truncated ext predecoded: %+v", e)
	}
}

func TestOverlayInvalidation(t *testing.T) {
	var m mem.Memory
	const base, size = 0x2000, 0x1000
	m.AddRegion("ram", base, size, mem.PermRead|mem.PermWrite|mem.PermExec)
	movi := isa.Inst{Op: isa.OpMovI, Imm: 7}.Encode(nil)[0]
	if err := m.LoadBlob(base, words(movi, movi, movi)); err != nil {
		t.Fatal(err)
	}
	tbl := NewOverlay(&m, base, size, 2)

	// A store into a page never fetched from must NOT poison it: the
	// first fetch afterwards decodes the stored bytes.
	tbl.Invalidate(base + 8)
	e := tbl.Lookup(base)
	if e == nil || e.Inst.Imm != 7 {
		t.Fatalf("first fetch after cold store: %+v", e)
	}

	// A store into the now-decoded page poisons it permanently.
	tbl.Invalidate(base + 8)
	if tbl.Lookup(base) != nil {
		t.Fatal("decoded page not poisoned by store")
	}
	if tbl.Lookup(base+8) != nil {
		t.Fatal("poisoned page served an entry")
	}

	// Other pages are unaffected.
	if err := m.LoadBlob(base+0x400, words(movi)); err != nil {
		t.Fatal(err)
	}
	if e := tbl.Lookup(base + 0x400); e == nil {
		t.Fatal("unrelated page poisoned")
	}

	// A store just past a page boundary also poisons the previous page
	// (a two-word instruction can straddle it).
	if e := tbl.Lookup(base + 0x7fc); e == nil {
		t.Fatal("expected tail of page 1 to decode")
	}
	tbl.Invalidate(base + 0x800)
	if tbl.Lookup(base+0x7fc) != nil {
		t.Fatal("straddling store did not poison the preceding page")
	}
}

func TestStatsAccumulate(t *testing.T) {
	ResetStats()
	AddRunStats(10, 2)
	AddRunStats(5, 0)
	s := GlobalStats()
	if s.Hits != 15 || s.Slow != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty stats string")
	}
}

// TestAddRunStatsConcurrent drives AddRunStats from many goroutines —
// the regression-matrix worker pattern — with a metrics registry
// installed, and requires both the package totals and the mirrored
// telemetry counters to come out exact. Run with -race this also proves
// the flush path is data-race free.
func TestAddRunStatsConcurrent(t *testing.T) {
	ResetStats()
	r := telemetry.NewRegistry()
	SetMetrics(r)
	defer SetMetrics(nil)
	const workers, rounds = 16, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				AddRunStats(3, 1)
				AddRunStats(0, 0) // zero flush: must be a no-op everywhere
			}
		}()
	}
	wg.Wait()
	s := GlobalStats()
	if want := uint64(workers * rounds * 3); s.Hits != want {
		t.Errorf("hits = %d, want %d", s.Hits, want)
	}
	if want := uint64(workers * rounds); s.Slow != want {
		t.Errorf("slow = %d, want %d", s.Slow, want)
	}
	if got := r.Counter("predecode.fetches").Value(); got != s.Hits {
		t.Errorf("mirrored fetches = %d, want %d", got, s.Hits)
	}
	if got := r.Counter("predecode.slow").Value(); got != s.Slow {
		t.Errorf("mirrored slow = %d, want %d", got, s.Slow)
	}
}
