package obj

import (
	"encoding/binary"
	"strings"
	"testing"
)

func word(v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return b[:]
}

func TestLinkLayoutAndSymbols(t *testing.T) {
	o1 := &Object{
		Name: "a.o",
		Text: append(word(1), word(2)...), // 8 bytes
		Data: word(0x1111),
		Symbols: []Symbol{
			{Name: "_start", Section: SecText, Off: 0},
			{Name: "a_data", Section: SecData, Off: 0},
		},
	}
	o2 := &Object{
		Name:    "b.o",
		Text:    word(3),
		Data:    word(0x2222),
		BssSize: 8,
		Symbols: []Symbol{
			{Name: "bfunc", Section: SecText, Off: 0},
			{Name: "bbss", Section: SecBss, Off: 4},
			{Name: "KONST", Abs: true, Value: 42},
		},
	}
	img, err := Link(LinkConfig{TextBase: 0x1000, DataBase: 0x2000}, o1, o2)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0x1000 {
		t.Errorf("entry = %#x", img.Entry)
	}
	if got := img.Symbols["bfunc"]; got != 0x1008 {
		t.Errorf("bfunc = %#x, want 0x1008", got)
	}
	if got := img.Symbols["a_data"]; got != 0x2000 {
		t.Errorf("a_data = %#x", got)
	}
	if got := img.Symbols["KONST"]; got != 42 {
		t.Errorf("KONST = %d", got)
	}
	// BSS follows data: o1 data 4 bytes, o2 data 4 bytes -> bss at 0x2008.
	if img.BssAddr != 0x2008 || img.BssSize != 8 {
		t.Errorf("bss = %#x+%d", img.BssAddr, img.BssSize)
	}
	if got := img.Symbols["bbss"]; got != 0x200c {
		t.Errorf("bbss = %#x", got)
	}
	if len(img.Segments) != 2 {
		t.Fatalf("segments = %d", len(img.Segments))
	}
	if img.Segments[0].Addr != 0x1000 || len(img.Segments[0].Data) != 12 {
		t.Errorf("text segment: %#x len %d", img.Segments[0].Addr, len(img.Segments[0].Data))
	}
}

func TestLinkAbs32Reloc(t *testing.T) {
	caller := &Object{
		Name: "caller.o",
		Text: append(word(0xAA000000), word(0)...), // placeholder ext word
		Symbols: []Symbol{
			{Name: "_start", Section: SecText, Off: 0},
		},
		Relocs: []Reloc{
			{Section: SecText, Off: 4, Kind: RelAbs32, Sym: "callee", Addend: 4},
		},
	}
	callee := &Object{
		Name:    "callee.o",
		Text:    word(0xBB000000),
		Symbols: []Symbol{{Name: "callee", Section: SecText, Off: 0}},
	}
	img, err := Link(LinkConfig{TextBase: 0x100, DataBase: 0x200, Entry: "_start"}, caller, callee)
	if err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint32(img.Segments[0].Data[4:])
	if got != 0x108+4 {
		t.Errorf("patched ext word = %#x, want %#x", got, 0x10c)
	}
	// The input object must not be mutated.
	if binary.LittleEndian.Uint32(caller.Text[4:]) != 0 {
		t.Error("link mutated input object")
	}
}

func TestLinkBr16Reloc(t *testing.T) {
	// Branch at text offset 0 of obj1, target at offset 0 of obj2
	// (address 0x108). disp = (0x108 - 0x100 - 4)/4 = 1.
	o1 := &Object{
		Name:    "o1",
		Text:    append(word(0xCC000000), word(0)...),
		Symbols: []Symbol{{Name: "_start", Section: SecText, Off: 0}},
		Relocs:  []Reloc{{Section: SecText, Off: 0, Kind: RelBr16, Sym: "far"}},
	}
	o2 := &Object{
		Name:    "o2",
		Text:    word(0xDD000000),
		Symbols: []Symbol{{Name: "far", Section: SecText, Off: 0}},
	}
	img, err := Link(LinkConfig{TextBase: 0x100, DataBase: 0x200}, o1, o2)
	if err != nil {
		t.Fatal(err)
	}
	got := binary.LittleEndian.Uint32(img.Segments[0].Data[0:])
	if got&0xffff != 1 {
		t.Errorf("branch displacement = %d, want 1", int16(got&0xffff))
	}
	if got>>24 != 0xCC {
		t.Errorf("opcode byte clobbered: %#x", got)
	}
}

func TestLinkErrors(t *testing.T) {
	undef := &Object{
		Name:    "u.o",
		Text:    word(0),
		Symbols: []Symbol{{Name: "_start", Section: SecText, Off: 0}},
		Relocs:  []Reloc{{Section: SecText, Off: 0, Kind: RelAbs32, Sym: "missing"}},
	}
	_, err := Link(LinkConfig{TextBase: 0, DataBase: 0x100}, undef)
	if err == nil || !strings.Contains(err.Error(), "undefined symbol") {
		t.Errorf("want undefined symbol error, got %v", err)
	}

	d1 := &Object{Name: "d1", Text: word(0), Symbols: []Symbol{{Name: "x", Section: SecText}}}
	d2 := &Object{Name: "d2", Text: word(0), Symbols: []Symbol{{Name: "x", Section: SecText}}}
	_, err = Link(LinkConfig{TextBase: 0, DataBase: 0x100, Entry: "x"}, d1, d2)
	if err == nil || !strings.Contains(err.Error(), "duplicate symbol") {
		t.Errorf("want duplicate symbol error, got %v", err)
	}

	empty := &Object{Name: "e", Text: word(0)}
	_, err = Link(LinkConfig{TextBase: 0, DataBase: 0x100}, empty)
	if err == nil || !strings.Contains(err.Error(), "entry symbol") {
		t.Errorf("want entry error, got %v", err)
	}
}

func TestLinkEntryFallback(t *testing.T) {
	// Without _start, _main is the entry.
	o := &Object{Name: "m", Text: word(0), Symbols: []Symbol{{Name: "_main", Section: SecText, Off: 0}}}
	img, err := Link(LinkConfig{TextBase: 0x40, DataBase: 0x100}, o)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != 0x40 {
		t.Errorf("entry = %#x", img.Entry)
	}
	// With both, _start wins.
	o2 := &Object{Name: "m2", Text: append(word(0), word(0)...), Symbols: []Symbol{
		{Name: "_main", Section: SecText, Off: 0},
		{Name: "_start", Section: SecText, Off: 4},
	}}
	img2, err := Link(LinkConfig{TextBase: 0x40, DataBase: 0x100}, o2)
	if err != nil {
		t.Fatal(err)
	}
	if img2.Entry != 0x44 {
		t.Errorf("entry = %#x, want _start at 0x44", img2.Entry)
	}
}

func TestBranchOutOfRange(t *testing.T) {
	big := &Object{
		Name:    "big",
		Text:    make([]byte, 4*40000), // 40000 words > 32767 word reach
		Symbols: []Symbol{{Name: "_start", Section: SecText, Off: 0}, {Name: "end", Section: SecText, Off: 4 * 39999}},
		Relocs:  []Reloc{{Section: SecText, Off: 0, Kind: RelBr16, Sym: "end"}},
	}
	_, err := Link(LinkConfig{TextBase: 0, DataBase: 0x80000}, big)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("want out-of-range branch error, got %v", err)
	}
}

func TestSourceAt(t *testing.T) {
	o := &Object{
		Name:    "s",
		Text:    append(word(0), word(0)...),
		Symbols: []Symbol{{Name: "_start", Section: SecText, Off: 0}},
		Lines: []LineInfo{
			{Off: 0, File: "s.asm", Line: 3},
			{Off: 4, File: "s.asm", Line: 4},
		},
	}
	img, err := Link(LinkConfig{TextBase: 0x1000, DataBase: 0x2000}, o)
	if err != nil {
		t.Fatal(err)
	}
	if f, l, ok := img.SourceAt(0x1000); !ok || f != "s.asm" || l != 3 {
		t.Errorf("SourceAt(0x1000) = %s:%d %v", f, l, ok)
	}
	if _, l, ok := img.SourceAt(0x1004); !ok || l != 4 {
		t.Errorf("SourceAt(0x1004) line = %d", l)
	}
	if _, _, ok := img.SourceAt(0x0fff); ok {
		t.Error("SourceAt before text should miss")
	}
	if a, ok := img.SymbolAddr("_start"); !ok || a != 0x1000 {
		t.Errorf("SymbolAddr = %#x %v", a, ok)
	}
}
