// Package obj defines the SC88 relocatable object format, the linker, and
// the loadable memory image produced for the execution platforms. Each
// assembler source file becomes one Object; the linker lays the objects'
// sections out over the SoC memory map, resolves cross-object symbols
// (base functions, embedded-software routines, trap handlers), and applies
// relocations.
package obj

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Section identifies one of the three linkable sections.
type Section uint8

// Sections.
const (
	SecText Section = iota
	SecData
	SecBss
	numSections
)

func (s Section) String() string {
	switch s {
	case SecText:
		return "text"
	case SecData:
		return "data"
	case SecBss:
		return "bss"
	}
	return "sec?"
}

// RelocKind identifies how a relocation patches its target.
type RelocKind uint8

// Relocation kinds.
const (
	// RelAbs32 patches a 32-bit little-endian word with sym+addend.
	RelAbs32 RelocKind = iota
	// RelBr16 patches the low 16 bits of an instruction base word with
	// the signed word displacement from the instruction's successor to
	// sym+addend. Target and site must land in the same section.
	RelBr16
)

func (k RelocKind) String() string {
	switch k {
	case RelAbs32:
		return "abs32"
	case RelBr16:
		return "br16"
	}
	return "reloc?"
}

// Symbol is a defined symbol: a label or an absolute constant.
type Symbol struct {
	Name string
	// Section is the section the symbol is defined in; SecBss offsets
	// address zero-initialised storage. Absolute symbols use Abs=true.
	Section Section
	Off     uint32
	Abs     bool
	Value   int64 // for absolute symbols
}

// Reloc is a pending patch in a section.
type Reloc struct {
	Section Section
	Off     uint32
	Kind    RelocKind
	Sym     string
	Addend  int64
}

// LineInfo maps a text-section offset to its source location.
type LineInfo struct {
	Off  uint32
	File string
	Line int
}

// Object is one assembled translation unit.
type Object struct {
	Name    string
	Text    []byte
	Data    []byte
	BssSize uint32
	Symbols []Symbol
	Relocs  []Reloc
	Lines   []LineInfo
}

// Segment is a contiguous span of initialised bytes in a linked image.
type Segment struct {
	Addr uint32
	Data []byte
}

// Image is a fully linked, loadable program.
type Image struct {
	Entry    uint32
	Segments []Segment
	// Symbols maps every global symbol to its final address (or absolute
	// value for Abs symbols).
	Symbols map[string]uint32
	// Lines maps text addresses back to source, for tracing platforms.
	Lines []LineInfo
	// BssAddr/BssSize locate zero-initialised storage the loader clears.
	BssAddr, BssSize uint32
}

// SymbolAddr looks up a symbol address in the image.
func (img *Image) SymbolAddr(name string) (uint32, bool) {
	a, ok := img.Symbols[name]
	return a, ok
}

// SourceAt returns the source location covering the given text address.
func (img *Image) SourceAt(addr uint32) (file string, line int, ok bool) {
	// Lines are sorted by Off (absolute address after linking).
	i := sort.Search(len(img.Lines), func(i int) bool { return img.Lines[i].Off > addr })
	if i == 0 {
		return "", 0, false
	}
	li := img.Lines[i-1]
	return li.File, li.Line, true
}

// LinkConfig controls image layout.
type LinkConfig struct {
	// TextBase is where the concatenated text sections start (ROM).
	TextBase uint32
	// DataBase is where data+bss start (RAM).
	DataBase uint32
	// Entry is the entry symbol; defaults to "_start" then "_main".
	Entry string
}

// LinkError reports one or more link failures.
type LinkError struct {
	Problems []string
}

func (e *LinkError) Error() string {
	if len(e.Problems) == 1 {
		return "link: " + e.Problems[0]
	}
	return fmt.Sprintf("link: %d problems, first: %s", len(e.Problems), e.Problems[0])
}

// Link combines objects into an image.
func Link(cfg LinkConfig, objects ...*Object) (*Image, error) {
	var problems []string
	fail := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	// Assign each object's section base addresses.
	type placed struct {
		obj  *Object
		base [numSections]uint32
	}
	align4 := func(v uint32) uint32 { return (v + 3) &^ 3 }
	textCur, dataCur := cfg.TextBase, cfg.DataBase
	places := make([]placed, len(objects))
	for i, o := range objects {
		places[i].obj = o
		places[i].base[SecText] = textCur
		textCur = align4(textCur + uint32(len(o.Text)))
		places[i].base[SecData] = dataCur
		dataCur = align4(dataCur + uint32(len(o.Data)))
	}
	bssBase := dataCur
	bssCur := bssBase
	for i, o := range objects {
		places[i].base[SecBss] = bssCur
		bssCur = align4(bssCur + o.BssSize)
	}

	// Global symbol table. Absolute symbols (constant EQUs) may be
	// defined by several objects when they share an include file; they
	// merge as long as the values agree. Labels must be unique.
	syms := make(map[string]uint32)
	symDef := make(map[string]string) // symbol -> defining object, for diagnostics
	symAbs := make(map[string]bool)
	for i, o := range objects {
		for _, s := range o.Symbols {
			if prev, dup := symDef[s.Name]; dup {
				if s.Abs && symAbs[s.Name] && syms[s.Name] == uint32(s.Value) {
					continue // identical shared constant
				}
				fail("duplicate symbol %q defined in %s and %s", s.Name, prev, o.Name)
				continue
			}
			symDef[s.Name] = o.Name
			symAbs[s.Name] = s.Abs
			if s.Abs {
				syms[s.Name] = uint32(s.Value)
			} else {
				syms[s.Name] = places[i].base[s.Section] + s.Off
			}
		}
	}

	// Build segment bytes (copies: relocation patches must not mutate the
	// input objects).
	textBytes := make([]byte, textCur-cfg.TextBase)
	dataBytes := make([]byte, dataCur-cfg.DataBase)
	for i, o := range objects {
		copy(textBytes[places[i].base[SecText]-cfg.TextBase:], o.Text)
		copy(dataBytes[places[i].base[SecData]-cfg.DataBase:], o.Data)
	}

	sectionBytes := func(sec Section) ([]byte, uint32) {
		switch sec {
		case SecText:
			return textBytes, cfg.TextBase
		case SecData:
			return dataBytes, cfg.DataBase
		default:
			return nil, 0
		}
	}

	// Apply relocations.
	for i, o := range objects {
		for _, r := range o.Relocs {
			target, ok := syms[r.Sym]
			if !ok {
				fail("%s: undefined symbol %q", o.Name, r.Sym)
				continue
			}
			buf, segBase := sectionBytes(r.Section)
			if buf == nil {
				fail("%s: relocation in non-loadable section %s", o.Name, r.Section)
				continue
			}
			site := places[i].base[r.Section] + r.Off
			off := site - segBase
			if int(off)+4 > len(buf) {
				fail("%s: relocation site 0x%x out of section", o.Name, site)
				continue
			}
			val := int64(target) + r.Addend
			switch r.Kind {
			case RelAbs32:
				binary.LittleEndian.PutUint32(buf[off:], uint32(val))
			case RelBr16:
				// Displacement in words from the instruction after the
				// branch (branches are single-word instructions).
				disp := (val - int64(site) - 4) / 4
				if (val-int64(site)-4)%4 != 0 {
					fail("%s: branch target %q not word-aligned", o.Name, r.Sym)
					continue
				}
				if disp < -32768 || disp > 32767 {
					fail("%s: branch to %q out of range (%d words)", o.Name, r.Sym, disp)
					continue
				}
				w := binary.LittleEndian.Uint32(buf[off:])
				w = (w &^ 0xffff) | (uint32(disp) & 0xffff)
				binary.LittleEndian.PutUint32(buf[off:], w)
			default:
				fail("%s: unknown relocation kind %d", o.Name, r.Kind)
			}
		}
	}

	// Entry point.
	entryName := cfg.Entry
	var entry uint32
	if entryName == "" {
		if _, ok := syms["_start"]; ok {
			entryName = "_start"
		} else {
			entryName = "_main"
		}
	}
	if a, ok := syms[entryName]; ok {
		entry = a
	} else {
		fail("entry symbol %q undefined", entryName)
	}

	if len(problems) > 0 {
		return nil, &LinkError{Problems: problems}
	}

	img := &Image{
		Entry:   entry,
		Symbols: syms,
		BssAddr: bssBase,
		BssSize: bssCur - bssBase,
	}
	if len(textBytes) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: cfg.TextBase, Data: textBytes})
	}
	if len(dataBytes) > 0 {
		img.Segments = append(img.Segments, Segment{Addr: cfg.DataBase, Data: dataBytes})
	}
	for i, o := range objects {
		for _, li := range o.Lines {
			img.Lines = append(img.Lines, LineInfo{
				Off:  places[i].base[SecText] + li.Off,
				File: li.File,
				Line: li.Line,
			})
		}
	}
	sort.Slice(img.Lines, func(a, b int) bool { return img.Lines[a].Off < img.Lines[b].Off })
	return img, nil
}
