// E19 — the persistent content-addressed artifact store and the sharded
// multi-process matrix: (a) a restarted process pointed at a warm store
// re-runs the full matrix without rebuilding or re-simulating any
// deterministic work (100% ≥ the 95% acceptance floor), with an
// identical outcome table; (b) the same frozen spec sharded across four
// worker processes by the advm-served daemon produces a byte-identical
// masked journal and outcome table to the serial in-process pool,
// deterministically; (c) benchmarks separate the cold matrix from a
// warm-restart matrix over the store. See EXPERIMENTS.md (E19).
package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"repro/advm"
)

// e19Run executes the full family × all-platforms matrix with fresh
// caches attached to store (which may be nil) and returns the report
// plus the caches for stats inspection.
func e19Run(t testing.TB, store *advm.ArtifactStore, workers int) (*advm.RegressionReport, *advm.BuildCache, *advm.RunCache) {
	t.Helper()
	sys := advm.StandardSystem()
	sl, err := advm.FreezeSystem("E19", sys)
	if err != nil {
		t.Fatal(err)
	}
	bc, rc := advm.NewBuildCache(), advm.NewRunCache()
	if store != nil {
		advm.AttachArtifactStore(store, bc, rc)
	}
	rep, err := advm.Regress(sys, sl, advm.RegressionSpec{
		Workers: workers, Cache: bc, RunCache: rc, SkipVet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep, bc, rc
}

// TestE19_WarmRestartReusesStore is acceptance (a): a fresh process —
// modelled as fresh in-memory caches over the same store directory —
// re-running the full matrix must serve every deterministic build and
// run from the store, with the identical outcome table.
func TestE19_WarmRestartReusesStore(t *testing.T) {
	dir := t.TempDir()
	store, err := advm.OpenArtifactStore(dir, advm.ArtifactStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, _, _ := e19Run(t, store, 4)
	if !cold.AllPassed() {
		t.Fatal("cold matrix failed")
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// The restart: a brand-new store handle over the same directory,
	// brand-new caches.
	store2, err := advm.OpenArtifactStore(dir, advm.ArtifactStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	warm, bc2, rc2 := e19Run(t, store2, 4)
	if !warm.AllPassed() {
		t.Fatal("warm matrix failed")
	}

	// 100% of build work and 100% of deterministic run work from disk:
	// zero misses, and the 252 cacheable cells (21 tests × 4 derivs ×
	// {golden, rtl, gate}) all disk hits.
	bs, rs := bc2.Stats(), rc2.Stats()
	if bs.Misses != 0 || bs.DiskHits == 0 {
		t.Fatalf("restarted build cache rebuilt artifacts: %+v", bs)
	}
	if rs.Misses != 0 || rs.DiskHits != 252 {
		t.Fatalf("restarted run cache re-simulated outcomes: %+v", rs)
	}

	// And the outcome table is the same matrix verdict, cell for cell.
	coldCells, _ := json.Marshal(cold.BundleCells())
	warmCells, _ := json.Marshal(warm.BundleCells())
	if !bytes.Equal(coldCells, warmCells) {
		t.Fatal("warm-restart outcome table diverges from the cold run")
	}
}

// TestE19WorkerProcess is the worker the sharded test re-executes this
// binary into; guarded by env so it is skipped in a normal run.
func TestE19WorkerProcess(t *testing.T) {
	if os.Getenv("ADVM_E19_WORKER") != "1" {
		t.Skip("worker helper process")
	}
	id, _ := strconv.Atoi(os.Getenv("ADVM_E19_WORKER_ID"))
	opts := advm.ShardWorkerOptions{ID: id, NewSystem: advm.StandardSystem}
	if dir := os.Getenv("ADVM_E19_STORE"); dir != "" {
		store, err := advm.OpenArtifactStore(dir, advm.ArtifactStoreOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer store.Close()
		opts.Store = store
	}
	if err := advm.RunShardWorker(os.Stdin, os.Stdout, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// TestE19_ShardedMatchesSerial is acceptance (b): the full matrix
// sharded across four worker processes — sharing one persistent store —
// produces a byte-identical masked journal and outcome table to the
// serial in-process pool.
func TestE19_ShardedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns four worker processes")
	}
	storeDir := t.TempDir()
	d := &advm.ShardDaemon{
		NewSystem: advm.StandardSystem,
		Workers:   4,
		WorkerCommand: func(id int) *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run=^TestE19WorkerProcess$")
			cmd.Env = append(os.Environ(),
				"ADVM_E19_WORKER=1",
				"ADVM_E19_WORKER_ID="+strconv.Itoa(id),
				"ADVM_E19_STORE="+storeDir)
			cmd.Stderr = os.Stderr
			return cmd
		},
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	sock := filepath.Join(t.TempDir(), "advm.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go d.Serve(l)

	reply, err := advm.ShardRegress(sock, advm.ShardRequest{Label: "E19", SkipVet: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(reply.Outcomes); n != 504 {
		t.Fatalf("sharded matrix ran %d cells, want 504", n)
	}

	// The serial reference: same label, fresh caches, one process.
	sys := advm.StandardSystem()
	sl, err := advm.FreezeSystem("E19", sys)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Plan.Epoch != sl.Epoch() {
		t.Fatalf("daemon epoch %s != local %s", reply.Plan.Epoch, sl.Epoch())
	}
	var serialBuf bytes.Buffer
	jw := advm.NewJournalWriter(&serialBuf)
	serial, err := advm.Regress(sys, sl, advm.RegressionSpec{
		Cache: advm.NewBuildCache(), RunCache: advm.NewRunCache(),
		SkipVet: true, Journal: jw,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	serialCells, _ := json.Marshal(serial.BundleCells())
	shardCells, _ := json.Marshal(reply.Report().BundleCells())
	if !bytes.Equal(serialCells, shardCells) {
		t.Fatal("sharded outcome table diverges from the serial pool")
	}

	var shardBuf bytes.Buffer
	sw := advm.NewJournalWriter(&shardBuf)
	for _, r := range reply.Journal {
		sw.Emit(r)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	serialMasked, err := advm.MaskJournal(serialBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	shardMasked, err := advm.MaskJournal(shardBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialMasked, shardMasked) {
		t.Fatalf("masked journals diverge (serial %d bytes, sharded %d bytes)",
			len(serialMasked), len(shardMasked))
	}
}

// e19Bench runs the golden-family matrix with fresh caches over store.
func e19Bench(b *testing.B, store *advm.ArtifactStore) {
	b.Helper()
	sys := advm.StandardSystem()
	sl, err := advm.FreezeSystem("E19", sys)
	if err != nil {
		b.Fatal(err)
	}
	bc, rc := advm.NewBuildCache(), advm.NewRunCache()
	if store != nil {
		advm.AttachArtifactStore(store, bc, rc)
	}
	rep, err := advm.Regress(sys, sl, advm.RegressionSpec{
		Kinds: []advm.Kind{advm.KindGolden},
		Cache: bc, RunCache: rc, SkipVet: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if !rep.AllPassed() {
		b.Fatal("matrix failed")
	}
}

// BenchmarkE19_ColdMatrix is the baseline: golden-family matrix, fresh
// caches, no persistent store — every cell builds and simulates.
func BenchmarkE19_ColdMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e19Bench(b, nil)
	}
}

// BenchmarkE19_WarmRestart is the restart story: each iteration is a
// fresh process-worth of caches over a store warmed once — the cost of
// the matrix when every artifact and outcome is a disk hit.
func BenchmarkE19_WarmRestart(b *testing.B) {
	store, err := advm.OpenArtifactStore(b.TempDir(), advm.ArtifactStoreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	e19Bench(b, store) // warm it
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e19Bench(b, store)
	}
}
